#include "stats/Stats.hh"

#include <algorithm>
#include <bit>

#include "obs/Metrics.hh"

namespace spin
{

void
Stats::onEject(const Packet &pkt)
{
    ++packetsEjected;
    flitsEjected += pkt.sizeFlits;
    const std::uint64_t lat = pkt.latency();
    latencySum += lat;
    netLatencySum += pkt.networkLatency();
    hopsSum += pkt.hops;
    maxLatency = std::max(maxLatency, lat);
    spinsOfEjected += pkt.spins;
    if (pkt.corrupted)
        ++packetsCorrupted;

    const unsigned bucket = lat == 0
        ? 0
        : std::bit_width(lat);
    if (latencyHist.size() <= bucket)
        latencyHist.resize(bucket + 1, 0);
    ++latencyHist[bucket];
}

void
Stats::reset(Cycle now)
{
    // Structural fault state (how much of the fabric is gone) describes
    // the network, not the measurement window; it survives the
    // warmup-reset so post-warmup reports still name the damage.
    const std::uint64_t lf = linksFailed;
    const std::uint64_t rf = routersFailed;
    *this = Stats();
    linksFailed = lf;
    routersFailed = rf;
    windowStart = now;
}

void
Stats::mergeFrom(const Stats &o)
{
    packetsCreated += o.packetsCreated;
    packetsInjected += o.packetsInjected;
    packetsEjected += o.packetsEjected;
    flitsCreated += o.flitsCreated;
    flitsInjected += o.flitsInjected;
    flitsEjected += o.flitsEjected;
    latencySum += o.latencySum;
    netLatencySum += o.netLatencySum;
    hopsSum += o.hopsSum;
    maxLatency = std::max(maxLatency, o.maxLatency);
    spinsOfEjected += o.spinsOfEjected;
    if (latencyHist.size() < o.latencyHist.size())
        latencyHist.resize(o.latencyHist.size(), 0);
    for (std::size_t b = 0; b < o.latencyHist.size(); ++b)
        latencyHist[b] += o.latencyHist[b];

    probesSent += o.probesSent;
    probesForked += o.probesForked;
    probesDropped += o.probesDropped;
    probesReturned += o.probesReturned;
    probeDropPriority += o.probeDropPriority;
    probeDropInactive += o.probeDropInactive;
    probeDropNoDep += o.probeDropNoDep;
    probeDropHops += o.probeDropHops;
    probeDropStale += o.probeDropStale;
    movesSent += o.movesSent;
    movesDropped += o.movesDropped;
    movesReturned += o.movesReturned;
    probeMovesSent += o.probeMovesSent;
    probeMovesDropped += o.probeMovesDropped;
    probeMovesReturned += o.probeMovesReturned;
    killMovesSent += o.killMovesSent;
    smContentionDrops += o.smContentionDrops;
    spins += o.spins;
    falsePositiveSpins += o.falsePositiveSpins;
    spinsCancelled += o.spinsCancelled;
    packetsRotated += o.packetsRotated;

    bubbleRecoveries += o.bubbleRecoveries;

    linksFailed += o.linksFailed;
    routersFailed += o.routersFailed;
    transientFaults += o.transientFaults;
    packetsUnroutable += o.packetsUnroutable;
    packetsRerouted += o.packetsRerouted;
    packetsLostToFaults += o.packetsLostToFaults;
    flitsLostToFaults += o.flitsLostToFaults;
    packetsCorrupted += o.packetsCorrupted;
    packetsDroppedAtNic += o.packetsDroppedAtNic;

    crcFails += o.crcFails;
    linkRetries += o.linkRetries;
    retransmits += o.retransmits;
    dupDrops += o.dupDrops;
    recoveredPackets += o.recoveredPackets;
    packetsAbandoned += o.packetsAbandoned;
    watchdogAlarms += o.watchdogAlarms;
}

double
Stats::latencyPercentile(double p) const
{
    // No packets retired means there is nothing to rank: return 0
    // rather than walking (and interpolating past the end of) an empty
    // or stale histogram. The shared helper ranks against the
    // histogram's own population, so a histogram that briefly disagrees
    // with packetsEjected (mid-update) still yields a value inside the
    // recorded range.
    if (packetsEjected == 0 || latencyHist.empty())
        return 0.0;
    return obs::histogramPercentile(latencyHist, p);
}

double
Stats::avgLatency() const
{
    return packetsEjected ? double(latencySum) / packetsEjected : 0.0;
}

double
Stats::avgNetLatency() const
{
    return packetsEjected ? double(netLatencySum) / packetsEjected : 0.0;
}

double
Stats::avgHops() const
{
    return packetsEjected ? double(hopsSum) / packetsEjected : 0.0;
}

double
Stats::throughput(int num_nodes, Cycle now) const
{
    const Cycle elapsed = now - windowStart;
    if (elapsed == 0 || num_nodes == 0)
        return 0.0;
    return double(flitsEjected) / double(num_nodes) / double(elapsed);
}

obs::JsonValue
Stats::toJson() const
{
    using obs::JsonValue;
    JsonValue o = JsonValue::object();

    JsonValue traffic = JsonValue::object();
    traffic.set("packetsCreated", JsonValue(packetsCreated));
    traffic.set("packetsInjected", JsonValue(packetsInjected));
    traffic.set("packetsEjected", JsonValue(packetsEjected));
    traffic.set("flitsCreated", JsonValue(flitsCreated));
    traffic.set("flitsInjected", JsonValue(flitsInjected));
    traffic.set("flitsEjected", JsonValue(flitsEjected));
    traffic.set("latencySum", JsonValue(latencySum));
    traffic.set("netLatencySum", JsonValue(netLatencySum));
    traffic.set("hopsSum", JsonValue(hopsSum));
    traffic.set("maxLatency", JsonValue(maxLatency));
    traffic.set("spinsOfEjected", JsonValue(spinsOfEjected));
    JsonValue hist = JsonValue::array();
    for (const std::uint64_t b : latencyHist)
        hist.push(JsonValue(b));
    traffic.set("latencyHist", std::move(hist));
    o.set("traffic", std::move(traffic));

    JsonValue sp = JsonValue::object();
    sp.set("probesSent", JsonValue(probesSent));
    sp.set("probesForked", JsonValue(probesForked));
    sp.set("probesDropped", JsonValue(probesDropped));
    sp.set("probesReturned", JsonValue(probesReturned));
    JsonValue drops = JsonValue::object();
    drops.set("priority", JsonValue(probeDropPriority));
    drops.set("inactive", JsonValue(probeDropInactive));
    drops.set("noDep", JsonValue(probeDropNoDep));
    drops.set("hops", JsonValue(probeDropHops));
    drops.set("stale", JsonValue(probeDropStale));
    sp.set("probeDropReasons", std::move(drops));
    sp.set("movesSent", JsonValue(movesSent));
    sp.set("movesDropped", JsonValue(movesDropped));
    sp.set("movesReturned", JsonValue(movesReturned));
    sp.set("probeMovesSent", JsonValue(probeMovesSent));
    sp.set("probeMovesDropped", JsonValue(probeMovesDropped));
    sp.set("probeMovesReturned", JsonValue(probeMovesReturned));
    sp.set("killMovesSent", JsonValue(killMovesSent));
    sp.set("smContentionDrops", JsonValue(smContentionDrops));
    sp.set("spins", JsonValue(spins));
    sp.set("falsePositiveSpins", JsonValue(falsePositiveSpins));
    sp.set("spinsCancelled", JsonValue(spinsCancelled));
    sp.set("packetsRotated", JsonValue(packetsRotated));
    o.set("spin", std::move(sp));

    JsonValue base = JsonValue::object();
    base.set("bubbleRecoveries", JsonValue(bubbleRecoveries));
    o.set("baseline", std::move(base));

    JsonValue fl = JsonValue::object();
    fl.set("linksFailed", JsonValue(linksFailed));
    fl.set("routersFailed", JsonValue(routersFailed));
    fl.set("transientFaults", JsonValue(transientFaults));
    fl.set("packetsUnroutable", JsonValue(packetsUnroutable));
    fl.set("packetsRerouted", JsonValue(packetsRerouted));
    fl.set("packetsLostToFaults", JsonValue(packetsLostToFaults));
    fl.set("flitsLostToFaults", JsonValue(flitsLostToFaults));
    fl.set("packetsCorrupted", JsonValue(packetsCorrupted));
    fl.set("packetsDroppedAtNic", JsonValue(packetsDroppedAtNic));
    o.set("faults", std::move(fl));

    JsonValue rel = JsonValue::object();
    rel.set("crcFails", JsonValue(crcFails));
    rel.set("linkRetries", JsonValue(linkRetries));
    rel.set("retransmits", JsonValue(retransmits));
    rel.set("dupDrops", JsonValue(dupDrops));
    rel.set("recoveredPackets", JsonValue(recoveredPackets));
    rel.set("packetsAbandoned", JsonValue(packetsAbandoned));
    rel.set("watchdogAlarms", JsonValue(watchdogAlarms));
    o.set("reliability", std::move(rel));

    JsonValue derived = JsonValue::object();
    derived.set("avgLatency", JsonValue(avgLatency()));
    derived.set("avgNetLatency", JsonValue(avgNetLatency()));
    derived.set("avgHops", JsonValue(avgHops()));
    derived.set("p50Latency", JsonValue(latencyPercentile(0.5)));
    derived.set("p99Latency", JsonValue(latencyPercentile(0.99)));
    o.set("derived", std::move(derived));

    o.set("windowStart", JsonValue(windowStart));
    return o;
}

} // namespace spin
