#include "stats/Stats.hh"

#include <algorithm>
#include <bit>

namespace spin
{

void
Stats::onEject(const Packet &pkt)
{
    ++packetsEjected;
    flitsEjected += pkt.sizeFlits;
    const std::uint64_t lat = pkt.latency();
    latencySum += lat;
    netLatencySum += pkt.networkLatency();
    hopsSum += pkt.hops;
    maxLatency = std::max(maxLatency, lat);
    spinsOfEjected += pkt.spins;

    const unsigned bucket = lat == 0
        ? 0
        : std::bit_width(lat);
    if (latencyHist.size() <= bucket)
        latencyHist.resize(bucket + 1, 0);
    ++latencyHist[bucket];
}

void
Stats::reset(Cycle now)
{
    *this = Stats();
    windowStart = now;
}

double
Stats::latencyPercentile(double p) const
{
    if (packetsEjected == 0 || latencyHist.empty())
        return 0.0;
    if (p <= 0.0)
        p = 1e-9;
    if (p > 1.0)
        p = 1.0;
    const double target = p * double(packetsEjected);
    double seen = 0.0;
    for (std::size_t b = 0; b < latencyHist.size(); ++b) {
        const double in_bucket = double(latencyHist[b]);
        if (seen + in_bucket >= target) {
            // Bucket b holds latencies in [2^(b-1), 2^b); interpolate.
            const double lo = b == 0 ? 0.0 : double(1ull << (b - 1));
            const double hi = double(1ull << b);
            const double frac =
                in_bucket > 0 ? (target - seen) / in_bucket : 0.0;
            return lo + frac * (hi - lo);
        }
        seen += in_bucket;
    }
    return double(maxLatency);
}

double
Stats::avgLatency() const
{
    return packetsEjected ? double(latencySum) / packetsEjected : 0.0;
}

double
Stats::avgNetLatency() const
{
    return packetsEjected ? double(netLatencySum) / packetsEjected : 0.0;
}

double
Stats::avgHops() const
{
    return packetsEjected ? double(hopsSum) / packetsEjected : 0.0;
}

double
Stats::throughput(int num_nodes, Cycle now) const
{
    const Cycle elapsed = now - windowStart;
    if (elapsed == 0 || num_nodes == 0)
        return 0.0;
    return double(flitsEjected) / double(num_nodes) / double(elapsed);
}

} // namespace spin
