/**
 * @file
 * Static Bubble deadlock-recovery baseline (Ramrakhyani & Krishna,
 * HPCA 2017), modeled at the fidelity the paper's comparison needs: one
 * VC per vnet at every input port is *reserved* and unusable during
 * normal operation; a per-router timeout detects a stuck packet and
 * unlocks the reserved VC at the requested next hop for it; from there
 * the packet drains on the reserved network along west-first routes
 * (acyclic, so recovery itself cannot deadlock). The performance
 * signature the paper highlights -- one VC lost to normal traffic, and
 * serialized recovery -- is preserved.
 */

#ifndef SPINNOC_DEADLOCK_STATICBUBBLE_HH
#define SPINNOC_DEADLOCK_STATICBUBBLE_HH

#include <vector>

#include "common/Types.hh"

namespace spin
{

class Network;

/** See file comment; one unit per router. */
class StaticBubbleUnit
{
  public:
    StaticBubbleUnit(Network &net, RouterId id);

    /** Timeout scan; runs once per cycle. */
    void tick(Cycle now);

  private:
    Network &net_;
    RouterId id_;
    /** First cycle each (inport, vc) was seen blocked; kNever = clear. */
    std::vector<Cycle> blockedSince_;

    int flatIdx(PortId inport, VcId vc) const;
};

} // namespace spin

#endif // SPINNOC_DEADLOCK_STATICBUBBLE_HH
