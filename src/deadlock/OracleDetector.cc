#include "deadlock/OracleDetector.hh"

#include "common/Logging.hh"
#include "fault/FaultInjector.hh"
#include "network/Network.hh"
#include "router/Router.hh"
#include "routing/RoutingAlgorithm.hh"
#include "routing/WestFirst.hh"

namespace spin
{

DeadlockReport
OracleDetector::detect() const
{
    const Topology &topo = net_.topo();
    const NetworkConfig &cfg = net_.config();
    const int nr = topo.numRouters();
    const int vcs = cfg.totalVcs();

    // Flat index over (router, inport, vc).
    std::vector<int> base(nr + 1, 0);
    for (int r = 0; r < nr; ++r)
        base[r + 1] = base[r] + topo.radix(r) * vcs;
    auto idx = [&](RouterId r, PortId p, VcId v) {
        return base[r] + p * vcs + v;
    };

    std::vector<char> prog(base[nr], 1);

    struct Blocked
    {
        RouterId r;
        PortId inport;
        VcId vc;
    };
    std::vector<Blocked> blocked;

    for (RouterId r = 0; r < nr; ++r) {
        const Router &rt = net_.router(r);
        for (PortId p = 0; p < rt.radix(); ++p) {
            const InputUnit &iu = rt.input(p);
            for (VcId v = 0; v < vcs; ++v) {
                const VirtualChannel &ch = iu.vc(v);
                if (!ch.active() || ch.empty() || !ch.front().isHead())
                    continue; // idle or draining: progresses
                if (ch.frozen)
                    continue; // committed to a rotation: progresses
                if (ch.grantedVc != kInvalidId)
                    continue; // downstream VC reserved: progresses
                if (!ch.routeValid)
                    continue; // transient
                if (rt.isNicPort(ch.request))
                    continue; // NICs eject without stalls
                prog[idx(r, p, v)] = 0;
                blocked.push_back(Blocked{r, p, v});
            }
        }
    }

    const RoutingAlgorithm &algo = net_.routing();
    const fault::FaultInjector *fi = net_.faults();
    const bool faulty = fi && fi->anyPermanent();
    std::vector<PortId> cands;
    std::vector<VcId> allowed;

    bool changed = true;
    while (changed) {
        changed = false;
        for (const Blocked &b : blocked) {
            char &flag = prog[idx(b.r, b.inport, b.vc)];
            if (flag)
                continue;
            const Router &rt = net_.router(b.r);
            const Packet &pkt = *rt.input(b.inport).vc(b.vc).owner();

            // Candidate output ports mirror Router::routeVc.
            if (cfg.scheme == DeadlockScheme::StaticBubble &&
                pkt.onEscape) {
                cands.clear();
                cands.push_back(westFirstNextPort(*topo.mesh, b.r,
                                                  pkt.destRouter));
            } else {
                RouterId target =
                    (pkt.intermediate != kInvalidId && !pkt.phaseTwo &&
                     pkt.intermediate != b.r)
                    ? pkt.intermediate
                    : pkt.destRouter;
                if (faulty && target != pkt.destRouter &&
                    fi->degradedDistance(b.r, target) < 0)
                    target = pkt.destRouter; // detour abandoned
                algo.candidates(pkt, rt, target, cands);
                if (faulty) {
                    // Mirror Router::filterFaultyPorts: keep only live
                    // ports that strictly reduce the degraded distance,
                    // else fall back to the degraded minimal tables. An
                    // unreachable target means the router purges the
                    // packet, which is progress, not deadlock.
                    const int dh = fi->degradedDistance(b.r, target);
                    if (dh < 0) {
                        flag = 1;
                        changed = true;
                        continue;
                    }
                    std::size_t w = 0;
                    for (const PortId c : cands) {
                        if (!fi->outPortAlive(b.r, c))
                            continue;
                        const LinkSpec *l = topo.outLink(b.r, c);
                        if (!l || fi->degradedDistance(l->dst, target) !=
                                      dh - 1)
                            continue;
                        cands[w++] = c;
                    }
                    if (w != 0) {
                        cands.resize(w);
                    } else {
                        const std::vector<PortId> &mp =
                            fi->degraded().minimalPorts(b.r, target);
                        cands.assign(mp.begin(), mp.end());
                    }
                }
            }

            bool can = false;
            for (const PortId o : cands) {
                const LinkSpec *l = topo.outLink(b.r, o);
                if (!l)
                    continue;
                if (cfg.scheme == DeadlockScheme::StaticBubble &&
                    pkt.onEscape) {
                    allowed.clear();
                    allowed.push_back(pkt.vnet * cfg.vcsPerVnet +
                                      cfg.vcsPerVnet - 1);
                } else {
                    algo.allowedVcs(pkt, rt, o, allowed);
                    applyVcReservation(net_, pkt, allowed);
                }
                for (const VcId dv : allowed) {
                    const VirtualChannel &down =
                        net_.router(l->dst).input(l->dstPort).vc(dv);
                    if (!down.active() ||
                        prog[idx(l->dst, l->dstPort, dv)]) {
                        can = true;
                        break;
                    }
                }
                if (can)
                    break;
            }
            if (can) {
                flag = 1;
                changed = true;
            }
        }
    }

    DeadlockReport report;
    for (const Blocked &b : blocked) {
        if (!prog[idx(b.r, b.inport, b.vc)]) {
            const auto &ch = net_.router(b.r).input(b.inport).vc(b.vc);
            report.members.push_back(DeadlockMember{
                b.r, b.inport, b.vc, ch.owner()->id});
        }
    }
    report.deadlocked = !report.members.empty();
    return report;
}

} // namespace spin
