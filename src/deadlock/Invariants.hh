/**
 * @file
 * Whole-network consistency auditor.
 *
 * Walks every router, link and NIC and cross-checks the distributed
 * state the simulator maintains redundantly: upstream credit counters
 * against downstream buffer occupancy (including credits in flight),
 * VC allocation ownership against resident packets, frozen-VC
 * bookkeeping against SPIN's victim contexts, and conservation of
 * flits (created = in queues + in buffers + in flight + ejected).
 *
 * Tests call this after stress runs; it is also handy interactively
 * when extending the router. Violations are returned as messages, not
 * panics, so a test can print all of them at once.
 */

#ifndef SPINNOC_DEADLOCK_INVARIANTS_HH
#define SPINNOC_DEADLOCK_INVARIANTS_HH

#include <string>
#include <vector>

#include "common/Types.hh"
#include "obs/Json.hh"

namespace spin
{

class Network;

/** Result of one audit pass. */
struct AuditReport
{
    /** Cycle the audit ran at. */
    Cycle cycle = 0;
    std::vector<std::string> violations;
    bool clean() const { return violations.empty(); }
    std::string toString() const;
    /** Machine-readable form (schema "spin-audit/v1") for CI
     *  artifacts and the model checker's counterexample traces. */
    obs::JsonValue toJson() const;
};

/**
 * Audit @p net. Safe to call at any cycle boundary (between step()
 * calls); mid-rotation states are accounted for.
 *
 * @param net the network (not modified; non-const only because the
 *        component accessors are non-const)
 */
AuditReport auditNetwork(Network &net);

} // namespace spin

#endif // SPINNOC_DEADLOCK_INVARIANTS_HH
