#include "deadlock/Invariants.hh"

#include <sstream>

#include "core/SpinManager.hh"
#include "core/SpinUnit.hh"
#include "fault/FaultInjector.hh"
#include "network/Network.hh"
#include "router/Router.hh"

namespace spin
{

std::string
AuditReport::toString() const
{
    std::ostringstream os;
    os << violations.size() << " violation(s)";
    for (const std::string &v : violations)
        os << "\n  - " << v;
    return os.str();
}

obs::JsonValue
AuditReport::toJson() const
{
    obs::JsonValue doc = obs::JsonValue::object();
    doc.set("schema", "spin-audit/v1");
    doc.set("cycle", static_cast<std::uint64_t>(cycle));
    doc.set("clean", clean());
    obs::JsonValue arr = obs::JsonValue::array();
    for (const std::string &v : violations)
        arr.push(v);
    doc.set("violations", std::move(arr));
    return doc;
}

namespace
{

template <typename... Args>
void
report(AuditReport &rep, const Args &...args)
{
    std::ostringstream os;
    (os << ... << args);
    rep.violations.push_back(os.str());
}

} // namespace

AuditReport
auditNetwork(Network &net)
{
    AuditReport rep;
    rep.cycle = net.now();
    const Topology &topo = net.topo();
    const fault::FaultInjector *fi = net.faults();
    const int vcs = net.config().totalVcs();
    const int depth = net.config().vcDepth;

    // 1. Credit conservation per link per VC: the upstream credit
    //    counter must equal depth minus everything it has not been
    //    credited for yet (buffered downstream, flits on the wire,
    //    credits on the reverse wire). Dead routers purge buffers
    //    without crediting upstream and failed links strand whatever
    //    was on the wire -- that modeled loss is permanent, so links
    //    touching faulted hardware are exempt.
    for (int li = 0; li < net.numLinks(); ++li) {
        const Link &l = net.link(li);
        const LinkSpec &spec = l.spec();
        if (fi && (fi->linkFailed(li) || fi->routerDead(spec.src) ||
                   fi->routerDead(spec.dst))) {
            continue;
        }
        const Router &up = net.router(spec.src);
        const Router &down = net.router(spec.dst);
        for (VcId v = 0; v < vcs; ++v) {
            const int credits = up.output(spec.srcPort).credits(v);
            const int buffered = down.input(spec.dstPort).vc(v).size();
            const int wire = l.inFlightFlits(v);
            const int back = l.inFlightCredits(v);
            if (credits + buffered + wire + back != depth) {
                report(rep, "credit imbalance R", spec.src, ":p",
                       spec.srcPort, "->R", spec.dst, " vc", v,
                       ": credits=", credits, " buffered=", buffered,
                       " wire=", wire, " back=", back, " depth=",
                       depth);
            }
        }
    }

    for (RouterId r = 0; r < net.numRouters(); ++r) {
        Router &rt = net.router(r);
        if (rt.dead())
            continue; // markDead purged its state wholesale
        const SpinUnit *su = rt.spinUnit();
        int frozen_found = 0;

        for (PortId p = 0; p < rt.radix(); ++p) {
            for (VcId v = 0; v < vcs; ++v) {
                const VirtualChannel &vc = rt.input(p).vc(v);

                // 2. Ownership: buffered flits belong to the owner and
                //    are not already ejected.
                if (!vc.empty()) {
                    if (!vc.active()) {
                        report(rep, "R", r, " in", p, " vc", v,
                               " holds flits while idle");
                    } else if (vc.front().pkt != vc.owner()) {
                        report(rep, "R", r, " in", p, " vc", v,
                               " front flit not owned by resident "
                               "packet");
                    }
                    if (vc.owner() &&
                        vc.owner()->ejectCycle != kNeverCycle) {
                        report(rep, "R", r, " in", p, " vc", v,
                               " holds flits of an ejected packet #",
                               vc.owner()->id);
                    }
                }

                // 3. Granted routes point at consistently-owned
                //    downstream VCs.
                if (vc.active() && vc.grantedVc != kInvalidId &&
                    vc.routeValid && !rt.isNicPort(vc.request) &&
                    vc.owner()) {
                    const OutputUnit &out = rt.output(vc.request);
                    if (out.ownerOf(vc.grantedVc) != vc.owner()->id) {
                        report(rep, "R", r, " in", p, " vc", v,
                               " granted down-vc ", vc.grantedVc,
                               " owned by #",
                               out.ownerOf(vc.grantedVc),
                               " not resident #", vc.owner()->id);
                    }
                }

                // 4. Freeze bookkeeping matches the SpinUnit.
                if (vc.frozen) {
                    ++frozen_found;
                    if (!su) {
                        report(rep, "R", r, " frozen VC without a SPIN "
                               "unit");
                    } else {
                        bool listed = false;
                        for (const auto &e : su->frozenEntries())
                            listed |= e.inport == p && e.vc == v;
                        if (!listed) {
                            report(rep, "R", r, " in", p, " vc", v,
                                   " frozen but not in the unit's "
                                   "entry list");
                        }
                    }
                }
            }
        }

        if (su) {
            if (static_cast<int>(su->frozenEntries().size()) !=
                frozen_found) {
                report(rep, "R", r, " tracks ",
                       su->frozenEntries().size(),
                       " frozen entries but ", frozen_found,
                       " VCs are frozen");
            }
            if (su->victim().active && su->frozenEntries().empty()) {
                report(rep, "R", r,
                       " victim context active with no frozen VCs");
            }
            if (!su->victim().active && frozen_found > 0) {
                report(rep, "R", r,
                       " frozen VCs without an active victim context");
            }
            // Stale victim: the committed spin cycle has passed but the
            // entries were neither rotated nor cancelled -- a frozen-VC
            // leak (the failure signature of a lost cancellation, e.g.
            // the SkipCancelUnfreeze mutation).
            if (su->victim().active &&
                su->victim().spinCycle < net.now()) {
                report(rep, "R", r, " victim context stale: spin cycle ",
                       su->victim().spinCycle, " passed at cycle ",
                       net.now(), " with ", su->frozenEntries().size(),
                       " VC(s) still frozen");
            }
        }
    }

    (void)topo;
    return rep;
}

} // namespace spin
