/**
 * @file
 * Ground-truth deadlock detector.
 *
 * A global, instantaneous wait-for analysis no real router could
 * perform -- which is exactly why it is useful here: it regenerates
 * Fig. 3 (minimum injection rates at which topologies deadlock),
 * classifies SPIN's spins as true or false positives in the tests, and
 * lets randomized property tests assert "no deadlock ever persists".
 */

#ifndef SPINNOC_DEADLOCK_ORACLEDETECTOR_HH
#define SPINNOC_DEADLOCK_ORACLEDETECTOR_HH

#include <vector>

#include "common/Types.hh"

namespace spin
{

class Network;

/** One blocked buffer participating in a deadlock. */
struct DeadlockMember
{
    RouterId router = kInvalidId;
    PortId inport = kInvalidId;
    VcId vc = kInvalidId;
    PacketId packet = 0;
};

/** Result of one oracle pass. */
struct DeadlockReport
{
    bool deadlocked = false;
    /** Every VC that can never make progress without intervention. */
    std::vector<DeadlockMember> members;
};

/**
 * See file comment.
 *
 * The analysis computes the maximal set of VCs that *can eventually
 * progress*: a blocked head can progress when one of its candidate
 * output ports leads to an input port with an idle allowed VC, or with
 * an allowed VC whose occupant can itself progress. The fixpoint
 * complement is the deadlocked set. Frozen (SPIN-committed) VCs are
 * treated as progressing: the committed rotation will move them.
 */
class OracleDetector
{
  public:
    explicit OracleDetector(Network &net) : net_(net) {}

    /** Analyze the network's instantaneous state. */
    DeadlockReport detect() const;

  private:
    Network &net_;
};

} // namespace spin

#endif // SPINNOC_DEADLOCK_ORACLEDETECTOR_HH
