#include "deadlock/StaticBubble.hh"

#include "common/Logging.hh"
#include "network/Network.hh"
#include "router/Router.hh"

namespace spin
{

StaticBubbleUnit::StaticBubbleUnit(Network &net, RouterId id)
    : net_(net), id_(id)
{
    const int radix = net.topo().radix(id);
    blockedSince_.assign(radix * net.config().totalVcs(), kNeverCycle);
}

int
StaticBubbleUnit::flatIdx(PortId inport, VcId vc) const
{
    return inport * net_.config().totalVcs() + vc;
}

void
StaticBubbleUnit::tick(Cycle now)
{
    Router &rt = net_.router(id_);
    const NetworkConfig &cfg = net_.config();
    const Cycle timeout = cfg.bubbleTimeout;

    for (PortId p = 0; p < rt.radix(); ++p) {
        InputUnit &iu = rt.input(p);
        for (VcId v = 0; v < iu.numVcs(); ++v) {
            VirtualChannel &ch = iu.vc(v);
            Cycle &since = blockedSince_[flatIdx(p, v)];

            const bool waiting = ch.active() && !ch.empty() &&
                ch.front().isHead() && ch.routeValid &&
                ch.grantedVc == kInvalidId && !ch.owner()->onEscape &&
                !rt.isNicPort(ch.request);
            if (!waiting) {
                since = kNeverCycle;
                continue;
            }
            if (since == kNeverCycle) {
                since = now;
                continue;
            }
            if (now - since < timeout)
                continue;

            // Timeout: unlock the reserved VC at the requested next hop
            // if it is free; otherwise keep waiting (the reserved
            // network drains, so it frees up eventually).
            const PortId o = ch.request;
            const Packet &pkt = *ch.owner();
            const VcId reserved =
                pkt.vnet * cfg.vcsPerVnet + cfg.vcsPerVnet - 1;
            if (rt.output(o).isIdle(reserved)) {
                rt.grantReserved(p, v, o, reserved);
                since = kNeverCycle;
            }
        }
    }
}

} // namespace spin
