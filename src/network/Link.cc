// Link is header-only; this translation unit anchors the network module.
#include "network/Link.hh"
