/**
 * @file
 * High-level construction API: routing-algorithm factory plus the
 * named configurations of the paper's Table III, so examples, tests and
 * benches assemble networks in a couple of lines.
 */

#ifndef SPINNOC_NETWORK_NETWORKBUILDER_HH
#define SPINNOC_NETWORK_NETWORKBUILDER_HH

#include <memory>
#include <string>
#include <vector>

#include "common/Config.hh"
#include "network/Network.hh"
#include "routing/RoutingAlgorithm.hh"
#include "topology/Topology.hh"

namespace spin
{

/** Routing-algorithm selector. */
enum class RoutingKind : std::uint8_t
{
    XyDor,           //!< deterministic dimension order
    WestFirst,       //!< turn-model partial adaptive (Dally avoidance)
    MinimalAdaptive, //!< fully adaptive minimal (needs recovery)
    EscapeVc,        //!< Duato escape-VC avoidance
    TorusBubble,     //!< DOR + bubble flow control (torus avoidance)
    UgalDally,       //!< UGAL with VC-ordering avoidance (dragonfly)
    UgalSpin,        //!< UGAL, unrestricted VCs (for SPIN)
    FavorsMin,       //!< FAvORS minimal (paper Sec. V)
    FavorsNMin,      //!< FAvORS non-minimal (paper Sec. V)
};

std::string toString(RoutingKind k);

/** Instantiate a routing algorithm. */
std::unique_ptr<RoutingAlgorithm> makeRouting(RoutingKind k);

/** Assemble a network over @p topo. */
std::unique_ptr<Network> buildNetwork(std::shared_ptr<const Topology> topo,
                                      NetworkConfig cfg, RoutingKind kind);

/** One Table III row: a named (config, routing) pair. */
struct ConfigPreset
{
    std::string name;
    NetworkConfig cfg;
    RoutingKind kind;

    std::unique_ptr<Network>
    build(std::shared_ptr<const Topology> topo) const
    {
        return buildNetwork(std::move(topo), cfg, kind);
    }
};

/// @name Table III presets
/// @{
/** 3-VC mesh designs: WestFirst, EscapeVC, StaticBubble,
 *  MinAdaptive+SPIN. */
std::vector<ConfigPreset> meshPresets3Vc();
/** 1-VC mesh designs: WestFirst and FAvORS-Min+SPIN. */
std::vector<ConfigPreset> meshPresets1Vc();
/** 3-VC dragonfly designs: UGAL (Dally avoidance) and UGAL+SPIN. */
std::vector<ConfigPreset> dragonflyPresets3Vc();
/** 1-VC dragonfly designs: Minimal+SPIN and FAvORS-NMin+SPIN. */
std::vector<ConfigPreset> dragonflyPresets1Vc();
/// @}

} // namespace spin

#endif // SPINNOC_NETWORK_NETWORKBUILDER_HH
