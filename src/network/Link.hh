/**
 * @file
 * One directed physical channel between two routers, with its reverse
 * credit wire. SPIN's special messages share the forward wire with flits
 * at higher priority (Sec. IV-D: "No additional links"); their delay
 * lines live in the SpinManager, but the busy/occupancy accounting that
 * makes flits yield to them lives here.
 */

#ifndef SPINNOC_NETWORK_LINK_HH
#define SPINNOC_NETWORK_LINK_HH

#include <cstdint>

#include "common/Packet.hh"
#include "common/Types.hh"
#include "sim/DelayLine.hh"
#include "topology/Topology.hh"

namespace spin
{

/** A flit in flight, tagged with its downstream VC. */
struct LinkFlit
{
    Flit flit;
    VcId vc = kInvalidId;
};

/** A credit in flight (reverse direction). */
struct CreditMsg
{
    VcId vc = kInvalidId;
    /** Tail credit: the downstream VC is free again. */
    bool isFree = false;
};

/** See file comment. */
class Link
{
  public:
    explicit Link(const LinkSpec &spec) : spec_(spec) {}

    const LinkSpec &spec() const { return spec_; }
    Cycle latency() const { return spec_.latency; }

    /// @name Forward (flit) direction
    /// @{
    /** True when a flit may enter the wire at @p now. */
    bool
    freeForFlit(Cycle now) const
    {
        return smBusyAt_ != now && (!everBusy_ || flitBusyUntil_ < now);
    }

    /** A flit enters the wire at @p now. */
    void
    pushFlit(Cycle now, LinkFlit lf)
    {
        pushFlitDelayed(now, 0, std::move(lf));
    }

    /**
     * A flit enters the wire at @p now but arrives @p extra cycles
     * late -- the link-retry layer charges recovered transmissions this
     * way (docs/FAULTS.md). Arrivals stay in order: a flit never
     * overtakes an earlier, retry-delayed one (the floor below). With
     * extra == 0 the floor is the identity, because normal arrivals on
     * one link already strictly increase (the wire admits one flit per
     * cycle), so the fault-free path is behavior-identical.
     */
    void
    pushFlitDelayed(Cycle now, Cycle extra, LinkFlit lf)
    {
        occupyFlit(now, now);
        Cycle arrival = now + spec_.latency + extra;
        if (everArrived_ && arrival <= lastArrival_)
            arrival = lastArrival_ + 1;
        lastArrival_ = arrival;
        everArrived_ = true;
        flits_.push(arrival, std::move(lf));
    }

    /**
     * SPIN rotation: a whole packet of @p size flits streams onto the
     * wire starting at @p now; flit i arrives at now + latency + i.
     * Consumes the flits (the caller's buffer is scratch).
     */
    void
    pushPacket(Cycle now, std::vector<LinkFlit> &lfs)
    {
        occupyFlit(now, now + lfs.size() - 1);
        Cycle arrival = now + spec_.latency;
        if (everArrived_ && arrival <= lastArrival_)
            arrival = lastArrival_ + 1;
        for (LinkFlit &lf : lfs)
            flits_.push(arrival++, std::move(lf));
        lastArrival_ = arrival - 1;
        everArrived_ = true;
    }

    std::vector<LinkFlit> drainFlits(Cycle now) { return flits_.drain(now); }

    /** Allocation-free drain for the per-cycle path. */
    template <typename F>
    void
    drainFlitsInto(Cycle now, F &&fn)
    {
        flits_.drainInto(now, fn);
    }
    /// @}

    /// @name Reverse (credit) direction
    /// @{
    void
    pushCredit(Cycle arrival, const CreditMsg &c)
    {
        credits_.push(arrival, c);
    }

    std::vector<CreditMsg>
    drainCredits(Cycle now)
    {
        return credits_.drain(now);
    }

    /** Allocation-free drain for the per-cycle path. */
    template <typename F>
    void
    drainCreditsInto(Cycle now, F &&fn)
    {
        credits_.drainInto(now, fn);
    }
    /// @}

    /// @name Special-message occupancy (wire shared with flits)
    /// @{
    /** An SM takes the wire at @p now; flits yield. */
    void
    occupySm(Cycle now, LinkUse kind)
    {
        smBusyAt_ = now;
        if (kind == LinkUse::Probe)
            ++probeUses_;
        else
            ++moveUses_;
    }
    /// @}

    /// @name Audit inspection
    /// @{
    /** Flits currently on the wire bound for downstream VC @p vc. */
    int
    inFlightFlits(VcId vc) const
    {
        int n = 0;
        flits_.forEach([&](Cycle, const LinkFlit &lf) {
            n += lf.vc == vc;
        });
        return n;
    }
    /** Credits on the reverse wire for upstream VC @p vc. */
    int
    inFlightCredits(VcId vc) const
    {
        int n = 0;
        credits_.forEach([&](Cycle, const CreditMsg &c) {
            n += c.vc == vc;
        });
        return n;
    }

    /** Visit every in-flight flit as (arrival, LinkFlit); state digests. */
    template <typename F>
    void
    forEachFlit(F &&fn) const
    {
        flits_.forEach(fn);
    }
    /** Visit every in-flight credit as (arrival, CreditMsg). */
    template <typename F>
    void
    forEachCredit(F &&fn) const
    {
        credits_.forEach(fn);
    }
    /** Last cycle a flit may still be entering the wire (digests). */
    Cycle flitBusyUntil() const { return everBusy_ ? flitBusyUntil_ : 0; }
    /** Cycle an SM last claimed the wire; kNeverCycle when never. */
    Cycle smBusyAt() const { return smBusyAt_; }
    /// @}

    /// @name Fault state (mirror of the FaultInjector's bitmap)
    /// @{
    /** Mark the link permanently failed. Gating happens upstream (the
     *  routing filter and SM launch consult the FaultInjector); the
     *  flag here is for introspection and audits. */
    void fail() { failed_ = true; }
    bool failed() const { return failed_; }
    /// @}

    /// @name Utilization counters (Fig. 8b)
    /// @{
    std::uint64_t flitUses() const { return flitUses_; }
    std::uint64_t probeUses() const { return probeUses_; }
    std::uint64_t moveUses() const { return moveUses_; }
    void
    resetUses()
    {
        flitUses_ = probeUses_ = moveUses_ = 0;
    }
    /// @}

  private:
    void
    occupyFlit(Cycle now, Cycle until)
    {
        flitBusyUntil_ = until;
        everBusy_ = true;
        flitUses_ += until - now + 1;
    }

    LinkSpec spec_;
    DelayLine<LinkFlit> flits_;
    DelayLine<CreditMsg> credits_;
    Cycle flitBusyUntil_ = 0;
    bool everBusy_ = false;
    /** Latest scheduled flit arrival (the in-order floor above). */
    Cycle lastArrival_ = 0;
    bool everArrived_ = false;
    Cycle smBusyAt_ = kNeverCycle;
    bool failed_ = false;
    std::uint64_t flitUses_ = 0;
    std::uint64_t probeUses_ = 0;
    std::uint64_t moveUses_ = 0;
};

} // namespace spin

#endif // SPINNOC_NETWORK_LINK_HH
