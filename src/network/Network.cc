#include "network/Network.hh"

#include <fstream>

#include "common/Logging.hh"
#include "core/SpinManager.hh"
#include "deadlock/StaticBubble.hh"
#include "fault/FaultInjector.hh"
#include "obs/Forensics.hh"
#include "obs/Json.hh"
#include "obs/Metrics.hh"
#include "obs/Profiler.hh"
#include "obs/Tracer.hh"
#include "routing/RoutingAlgorithm.hh"
#include "sim/Parallel.hh"

namespace spin
{

thread_local StepShard *tlsStepShard = nullptr;

namespace
{

/** Installs shard staging (stats + trace redirection) for the duration
 *  of one shard's work on the current thread. RAII so a FatalError
 *  thrown inside a shard never leaks the redirection into later
 *  serial code on this thread. */
class ShardScope
{
  public:
    explicit ShardScope(StepShard &sh)
    {
        tlsStepShard = &sh;
        obs::Tracer::stageInto(&sh.events);
    }
    ~ShardScope()
    {
        obs::Tracer::stageInto(nullptr);
        tlsStepShard = nullptr;
    }
    ShardScope(const ShardScope &) = delete;
    ShardScope &operator=(const ShardScope &) = delete;
};

} // namespace

Network::Network(std::shared_ptr<const Topology> topo,
                 const NetworkConfig &cfg,
                 std::unique_ptr<RoutingAlgorithm> routing)
    : topo_(std::move(topo)), cfg_(cfg), routing_(std::move(routing)),
      rng_(cfg.seed)
{
    SPIN_ASSERT(topo_, "null topology");
    SPIN_ASSERT(routing_, "null routing algorithm");
    cfg_.validate();

    const int nr = topo_->numRouters();

    // Links, with (router, port) -> index maps in both directions.
    outIdx_.assign(nr, {});
    inIdx_.assign(nr, {});
    nicIdx_.assign(nr, {});
    for (RouterId r = 0; r < nr; ++r) {
        outIdx_[r].assign(topo_->radix(r), -1);
        inIdx_[r].assign(topo_->radix(r), -1);
        nicIdx_[r].assign(topo_->radix(r), kInvalidId);
    }
    links_.reserve(topo_->links().size());
    for (const LinkSpec &spec : topo_->links()) {
        const auto idx = static_cast<std::int32_t>(links_.size());
        links_.emplace_back(spec);
        outIdx_[spec.src][spec.srcPort] = idx;
        inIdx_[spec.dst][spec.dstPort] = idx;
    }
    for (const NicAttach &a : topo_->nics())
        nicIdx_[a.router][a.port] = a.node;

    routerLoad_.assign(nr, 0);
    routers_.reserve(nr);
    for (RouterId r = 0; r < nr; ++r)
        routers_.push_back(std::make_unique<Router>(*this, r));

    nics_.reserve(topo_->numNodes());
    for (NodeId n = 0; n < topo_->numNodes(); ++n)
        nics_.push_back(std::make_unique<Nic>(*this, n));

    routing_->attach(*this);
    // minVcsPerVnet() is authoritative: under-provisioning would void
    // the deadlock-freedom argument the algorithm's selfDeadlockFree()
    // declaration rests on (spin_lint verifies the declarations
    // statically). Static Bubble strips one reserved VC per vnet from
    // normal traffic (applyVcReservation), so it must not count.
    const int reservedVcs =
        cfg_.scheme == DeadlockScheme::StaticBubble ? 1 : 0;
    if (cfg_.vcsPerVnet - reservedVcs < routing_->minVcsPerVnet()) {
        SPIN_FATAL(routing_->name(), " needs at least ",
                   routing_->minVcsPerVnet(),
                   " VCs per vnet usable by normal traffic, got ",
                   cfg_.vcsPerVnet - reservedVcs, " (", cfg_.vcsPerVnet,
                   " configured, ", reservedVcs,
                   " reserved for recovery)");
    }

    if (cfg_.scheme == DeadlockScheme::Spin) {
        spinMgr_ = std::make_unique<SpinManager>(*this);
    } else if (cfg_.scheme == DeadlockScheme::StaticBubble) {
        bubbles_.reserve(nr);
        for (RouterId r = 0; r < nr; ++r)
            bubbles_.push_back(std::make_unique<StaticBubbleUnit>(*this, r));
    }

    // Shard tables for the parallel step phases (docs/SCALING.md).
    // Shards are contiguous router-id ranges, so committing staged
    // side effects in shard order reproduces the serial router
    // iteration order exactly -- that identity is what makes results
    // bit-identical for every thread count. The tables are built even
    // for the serial case (one shard spanning everything) so both
    // paths walk the same canonical orders.
    threads_ = cfg_.threads > nr ? nr : cfg_.threads;
    shardLo_.resize(static_cast<std::size_t>(threads_) + 1);
    for (int s = 0; s <= threads_; ++s)
        shardLo_[s] = static_cast<RouterId>(
            static_cast<std::int64_t>(nr) * s / threads_);
    shardFlitLinks_.assign(threads_, {});
    shardCreditLinks_.assign(threads_, {});
    shardNics_.assign(threads_, {});
    for (int s = 0; s < threads_; ++s) {
        for (RouterId r = shardLo_[s]; r < shardLo_[s + 1]; ++r) {
            for (const std::int32_t li : inIdx_[r]) {
                if (li >= 0)
                    shardFlitLinks_[s].push_back(li);
            }
            for (const std::int32_t li : outIdx_[r]) {
                if (li >= 0)
                    shardCreditLinks_[s].push_back(li);
            }
            for (const NodeId n : topo_->nodesAt(r))
                shardNics_[s].push_back(n);
        }
    }
    if (threads_ > 1) {
        shards_.resize(threads_);
        exec_ = std::make_unique<StepExecutor>(threads_);
    }
}

Network::~Network() = default;

void
Network::step()
{
    const Cycle now = clock_.now();
    obs::PhaseProfiler *const prof = profiler_.get();

    // 0. Fault events due this cycle fire before anything moves, so a
    // failed component never accepts new work in the same cycle.
    if (faults_) {
        obs::PhaseScope ps(prof, obs::Phase::Faults);
        faults_->tick(now);
    }

    // 1. Wire arrivals. Sharded: each link's flit queue is drained by
    // the shard owning its destination router and its credit queue by
    // the shard owning its source router, so every piece of router
    // state keeps a single writer. Eject wires stay serial below:
    // tail retirement allocates packet ids through the eject listener
    // and needs one canonical (node-id) order.
    {
        obs::PhaseScope ps(prof, obs::Phase::Wires);
        runSharded([this, now](int s) { drainWiresShard(s, now); });
        for (auto &np : nics_)
            np->drainEjectWire(now);
        // End-to-end reliability timers ride the same serial slot:
        // retransmission allocates packet ids and touches peer NICs
        // (acks), so it needs the canonical node order too.
        if (cfg_.reliability.enabled) {
            for (auto &np : nics_)
                np->reliabilityStep(now);
        }
    }

    // 2-3. SPIN phases.
    if (spinMgr_) {
        {
            obs::PhaseScope ps(prof, obs::Phase::SpecialMsg);
            spinMgr_->smPhase(now);
        }
        obs::PhaseScope ps(prof, obs::Phase::Rotation);
        spinMgr_->spinPhase(now);
    }

    // 4. Static Bubble recovery.
    if (!bubbles_.empty()) {
        obs::PhaseScope ps(prof, obs::Phase::Bubble);
        for (auto &bp : bubbles_)
            bp->tick(now);
    }

    // 5. Injection. Sharded: a NIC touches only its own wires, its own
    // tracker, and its attachment router's shard (source-routing draws
    // come from the attachment router's private rng stream).
    {
        obs::PhaseScope ps(prof, obs::Phase::Injection);
        runSharded([this, now](int s) {
            for (const NodeId n : shardNics_[s])
                nics_[n]->injectStep(now);
        });
    }

    // 6-7. Route compute, VC allocation, switch allocation. A router
    // with no buffered flit provably does nothing in either phase
    // (every VC is empty, so route compute, allocation and the
    // round-robin pointers are untouched) -- skipping it is exactly
    // behavior-preserving and makes low-load cycles cheap. Both phases
    // write only router-local state; what they read of other routers
    // (credit counts, load) is mutated by other phases, never this
    // one, so within-phase order is immaterial and the shards can run
    // concurrently.
    {
        obs::PhaseScope ps(prof, obs::Phase::Routing);
        runSharded([this](int s) {
            const RouterId hi = shardLo_[s + 1];
            for (RouterId r = shardLo_[s]; r < hi; ++r) {
                if (routerLoad_[r] != 0)
                    routers_[r]->computeRoutes();
            }
        });
    }
    {
        obs::PhaseScope ps(prof, obs::Phase::SwitchAlloc);
        runSharded([this](int s) {
            const RouterId hi = shardLo_[s + 1];
            for (RouterId r = shardLo_[s]; r < hi; ++r) {
                if (routerLoad_[r] != 0)
                    routers_[r]->allocateSwitch();
            }
        });
    }

    // 8. SPIN timers.
    if (spinMgr_) {
        obs::PhaseScope ps(prof, obs::Phase::FsmTimers);
        spinMgr_->fsmTick(now);
    }

    if (samplers_ || metrics_) {
        obs::PhaseScope ps(prof, obs::Phase::Telemetry);
        if (samplers_)
            samplers_->tick(now);
        if (metrics_)
            metrics_->tick(now);
    }

    if (prof)
        prof->onCycle();

    clock_.tick();
}

void
Network::run(Cycle cycles)
{
    for (Cycle i = 0; i < cycles; ++i)
        step();
}

void
Network::runSharded(const std::function<void(int)> &fn)
{
    if (!exec_) {
        // Serial: no staging, no commit. Identical results by
        // construction -- one shard walks the same canonical orders
        // the concatenated shards do.
        fn(0);
        return;
    }
    exec_->run([this, &fn](int s) {
        ShardScope scope(shards_[static_cast<std::size_t>(s)]);
        fn(s);
    });
    commitShards();
}

void
Network::commitShards()
{
    for (StepShard &sh : shards_) {
        stats_.mergeFrom(sh.stats);
        sh.stats = Stats();
        SPIN_ASSERT(inFlight_ >= sh.lost, "loss without matching offer");
        inFlight_ -= sh.lost;
        sh.lost = 0;
        if (tracer_) {
            // Replay through record() on this (coordinating) thread:
            // filters apply here, and sink output lands in shard
            // order, i.e. exactly the serial emission order.
            for (const obs::TraceEvent &e : sh.events)
                tracer_->record(e);
        }
        sh.events.clear();
    }
}

void
Network::drainWiresShard(int s, Cycle now)
{
    for (const std::int32_t li : shardFlitLinks_[s]) {
        Link &l = links_[li];
        l.drainFlitsInto(now, [&](LinkFlit &lf) {
            routers_[l.spec().dst]->receiveFlit(l.spec().dstPort, lf.vc,
                                                std::move(lf.flit));
        });
    }
    for (const std::int32_t li : shardCreditLinks_[s]) {
        Link &l = links_[li];
        l.drainCreditsInto(now, [&](const CreditMsg &c) {
            routers_[l.spec().src]->receiveCredit(l.spec().srcPort, c.vc,
                                                  c.isFree);
        });
    }
    for (const NodeId n : shardNics_[s])
        nics_[n]->drainArrivalWires(now);
}

Link *
Network::outLinkOf(RouterId r, PortId port)
{
    const std::int32_t i = outIdx_[r][port];
    return i < 0 ? nullptr : &links_[i];
}

const Link *
Network::outLinkOf(RouterId r, PortId port) const
{
    const std::int32_t i = outIdx_[r][port];
    return i < 0 ? nullptr : &links_[i];
}

Link *
Network::inLinkOf(RouterId r, PortId port)
{
    const std::int32_t i = inIdx_[r][port];
    return i < 0 ? nullptr : &links_[i];
}

Nic &
Network::nicAt(RouterId r, PortId port)
{
    const NodeId n = nicIdx_[r][port];
    SPIN_ASSERT(n != kInvalidId, "no NIC at router ", r, " port ", port);
    return *nics_[n];
}

PacketPtr
Network::makePacket(NodeId src, NodeId dest, VnetId vnet, int size_flits)
{
    SPIN_ASSERT(src >= 0 && src < numNodes(), "bad src node ", src);
    SPIN_ASSERT(dest >= 0 && dest < numNodes(), "bad dest node ", dest);
    SPIN_ASSERT(vnet >= 0 && vnet < cfg_.vnets, "bad vnet ", vnet);
    SPIN_ASSERT(size_flits >= 1 && size_flits <= cfg_.maxPacketSize,
                "bad packet size ", size_flits);
    auto pkt = std::make_shared<Packet>();
    pkt->id = nextPacketId_++;
    pkt->src = src;
    pkt->dest = dest;
    pkt->destRouter = topo_->routerOfNode(dest);
    pkt->vnet = vnet;
    pkt->sizeFlits = size_flits;
    pkt->createCycle = clock_.now();
    return pkt;
}

void
Network::offerPacket(const PacketPtr &pkt)
{
    ++stats_.packetsCreated;
    stats_.flitsCreated += pkt->sizeFlits;
    ++inFlight_;
    nics_[pkt->src]->offer(pkt);
}

PacketPtr
Network::makeRetransmit(const PacketPtr &orig)
{
    auto pkt = std::make_shared<Packet>();
    pkt->id = nextPacketId_++;
    pkt->src = orig->src;
    pkt->dest = orig->dest;
    pkt->destRouter = orig->destRouter;
    pkt->vnet = orig->vnet;
    pkt->sizeFlits = orig->sizeFlits;
    // Latency keeps measuring from the first creation: recovery time is
    // part of the packet's end-to-end story.
    pkt->createCycle = orig->createCycle;
    pkt->reliable = true;
    pkt->e2eSeq = orig->e2eSeq;
    pkt->attempt = orig->attempt + 1;
    pkt->origId = orig->origId;
    offerPacket(pkt);
    return pkt;
}

void
Network::setEjectListener(std::function<void(const PacketPtr &)> fn)
{
    ejectListener_ = std::move(fn);
}

void
Network::notifyEjected(const PacketPtr &pkt)
{
    SPIN_ASSERT(inFlight_ > 0, "eject without matching offer");
    --inFlight_;
    if (ejectListener_)
        ejectListener_(pkt);
}

void
Network::notifyLost(const PacketPtr &pkt)
{
    (void)pkt;
    if (StepShard *const sh = tlsStepShard) {
        // Parallel phase: stage the retirement; commitShards()
        // validates against the master in-flight count.
        ++sh->lost;
        return;
    }
    SPIN_ASSERT(inFlight_ > 0, "loss without matching offer");
    --inFlight_;
}

void
Network::beginMeasurement()
{
    stats_.reset(clock_.now());
    for (Link &l : links_)
        l.resetUses();
    usageWindowStart_ = clock_.now();
    // Windowed series restart with the measurement window, mirroring
    // the non-structural counter reset above (warmup samples would
    // otherwise pollute every report built from them).
    if (samplers_)
        samplers_->reset(clock_.now());
    if (metrics_)
        metrics_->onMeasurementBegin(clock_.now());
}

LinkUsage
Network::linkUsage() const
{
    LinkUsage u;
    for (const Link &l : links_) {
        u.flitCycles += l.flitUses();
        u.probeCycles += l.probeUses();
        u.moveCycles += l.moveUses();
    }
    u.totalCycles = links_.size() * (clock_.now() - usageWindowStart_);
    const std::uint64_t used = u.flitCycles + u.probeCycles + u.moveCycles;
    u.idleCycles = u.totalCycles > used ? u.totalCycles - used : 0;
    return u;
}

// ---------------------------------------------------------------------
// Observability
// ---------------------------------------------------------------------

void
Network::setTracer(std::unique_ptr<obs::Tracer> tracer)
{
    tracer_ = std::move(tracer);
}

obs::NetworkSamplers &
Network::enableSampling(const obs::SamplerConfig &cfg)
{
    samplers_ = std::make_unique<obs::NetworkSamplers>(*this, cfg);
    return *samplers_;
}

obs::Forensics &
Network::enableForensics(std::size_t max_records)
{
    forensics_ = std::make_unique<obs::Forensics>(max_records);
    return *forensics_;
}

obs::NetworkMetrics &
Network::enableMetrics(const obs::MetricsConfig &cfg,
                       std::unique_ptr<obs::MetricsSink> sink)
{
    if (metrics_)
        metrics_->finish(clock_.now());
    metrics_ =
        std::make_unique<obs::NetworkMetrics>(*this, cfg, std::move(sink));
    return *metrics_;
}

obs::PhaseProfiler &
Network::enableProfiler()
{
    if (!profiler_)
        profiler_ = std::make_unique<obs::PhaseProfiler>();
    return *profiler_;
}

obs::JsonValue
Network::telemetryJson() const
{
    obs::JsonValue root = obs::JsonValue::object();

    obs::JsonValue config = obs::JsonValue::object();
    config.set("name", obs::JsonValue(cfg_.name));
    config.set("scheme", obs::JsonValue(toString(cfg_.scheme)));
    config.set("routing", obs::JsonValue(routing_->name()));
    config.set("vnets", obs::JsonValue(cfg_.vnets));
    config.set("vcsPerVnet", obs::JsonValue(cfg_.vcsPerVnet));
    config.set("vcDepth", obs::JsonValue(cfg_.vcDepth));
    config.set("tDd", obs::JsonValue(cfg_.tDd));
    config.set("seed", obs::JsonValue(cfg_.seed));
    config.set("numRouters", obs::JsonValue(numRouters()));
    config.set("numNodes", obs::JsonValue(numNodes()));
    config.set("numLinks", obs::JsonValue(numLinks()));
    root.set("config", std::move(config));

    root.set("cycle", obs::JsonValue(clock_.now()));
    root.set("packetsInFlight", obs::JsonValue(inFlight_));
    root.set("stats", stats_.toJson());

    const LinkUsage u = linkUsage();
    obs::JsonValue lu = obs::JsonValue::object();
    lu.set("flitCycles", obs::JsonValue(u.flitCycles));
    lu.set("probeCycles", obs::JsonValue(u.probeCycles));
    lu.set("moveCycles", obs::JsonValue(u.moveCycles));
    lu.set("idleCycles", obs::JsonValue(u.idleCycles));
    lu.set("totalCycles", obs::JsonValue(u.totalCycles));
    root.set("linkUsage", std::move(lu));

    if (samplers_)
        root.set("samplers", samplers_->toJson());
    if (forensics_)
        root.set("forensics", forensics_->toJson());
    if (faults_)
        root.set("faults", faults_->toJson());
    if (metrics_) {
        obs::JsonValue m = obs::JsonValue::object();
        m.set("interval", obs::JsonValue(metrics_->config().interval));
        m.set("windows", obs::JsonValue(metrics_->windowsEmitted()));
        root.set("metrics", std::move(m));
    }
    // Wall-clock attribution is machine-dependent; it rides alongside
    // the deterministic sections and is never part of gated documents.
    if (profiler_)
        root.set("profile", profiler_->toJson());
    return root;
}

fault::FaultInjector &
Network::attachFaults(fault::FaultSchedule schedule)
{
    faults_ =
        std::make_unique<fault::FaultInjector>(*this, std::move(schedule));
    for (auto &rp : routers_)
        rp->setFaultInjector(faults_.get());
    return *faults_;
}

bool
Network::dumpTelemetry(const std::string &path) const
{
    std::ofstream os(path);
    if (!os)
        return false;
    os << telemetryJson().dump(2) << '\n';
    return static_cast<bool>(os);
}

} // namespace spin
