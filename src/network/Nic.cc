#include "network/Nic.hh"

#include "common/Logging.hh"
#include "fault/FaultInjector.hh"
#include "network/Network.hh"
#include "obs/Forensics.hh"
#include "obs/Tracer.hh"
#include "routing/RoutingAlgorithm.hh"

namespace spin
{

namespace
{

/** Reliability-protocol trace event (fault category, like the injector's
 *  own events, so chaos runs filter on one category). */
void
traceRel(Network &net, Cycle now, const char *name, RouterId router,
         PortId port, const Packet &p, std::int64_t arg0, std::int64_t arg1)
{
    obs::Tracer *t = net.trace();
    if (!t)
        return;
    obs::TraceEvent e;
    e.cycle = now;
    e.category = obs::kCatFault;
    e.name = name;
    e.router = router;
    e.packet = p.id;
    e.port = port;
    e.arg0 = arg0;
    e.arg1 = arg1;
    t->record(e);
}

} // namespace

Nic::Nic(Network &net, NodeId id)
    : net_(net),
      id_(id),
      router_(net.topo().routerOfNode(id)),
      port_(net.topo().portOfNode(id)),
      tracker_(port_, false, net.config().totalVcs(), net.config().vcDepth)
{
}

void
Nic::offer(const PacketPtr &pkt)
{
    SPIN_ASSERT(pkt->src == id_, "packet offered to wrong NIC");
    if (net_.config().reliability.enabled && !pkt->reliable) {
        // Fresh packet entering the reliable layer: stamp its per-flow
        // sequence number and start tracking it for retransmission.
        // Retransmitted copies arrive here already stamped (reliable
        // set by makeRetransmit) and keep their existing entry.
        pkt->reliable = true;
        pkt->origId = pkt->id;
        pkt->e2eSeq = nextSeq_[pkt->dest]++;
        retx_.push_back(RetxEntry{pkt, false});
    }
    queue_.push_back(pkt);
}

std::size_t
Nic::queueLength() const
{
    return queue_.size();
}

void
Nic::drainArrivalWires(Cycle now)
{
    injWire_.drainInto(now, [&](LinkFlit &lf) {
        net_.router(router_).receiveFlit(port_, lf.vc,
                                         std::move(lf.flit));
    });

    credWire_.drainInto(now, [&](const CreditMsg &c) {
        tracker_.onCredit(c.vc, c.isFree, now);
    });
}

void
Nic::drainEjectWire(Cycle now)
{
    ejectWire_.drainInto(now, [&](const Flit &f) {
        if (!f.isTail())
            return;
        f.pkt->ejectCycle = now;
        if (f.pkt->reliable) {
            retireReliable(f, now);
            return;
        }
        // A drop-marked packet is discarded by the end node (CRC
        // reject); it still ejected, so flow control is untouched
        // and only the accounting differs.
        if (f.pkt->faultDropped)
            ++net_.stats().packetsDroppedAtNic;
        net_.stats().onEject(*f.pkt);
        if (obs::Tracer *t = net_.trace())
            t->flit(now, "eject", router_, *f.pkt, port_, kInvalidId,
                    f.pkt->latency(), f.pkt->hops);
        net_.notifyEjected(f.pkt);
    });
}

void
Nic::retireReliable(const Flit &f, Cycle now)
{
    Packet &p = *f.pkt;
    Stats &st = net_.stats();
    if (p.faultDropped || p.corrupted || !f.crcOk()) {
        // Checksum reject at the end node: discard without acking and
        // let the source's timeout drive a retransmission. The copy
        // still ejected, so flow control is untouched.
        ++st.packetsDroppedAtNic;
        net_.notifyLost(f.pkt);
        return;
    }
    FlowState &flow = flows_[p.src];
    const bool dup =
        p.e2eSeq < flow.base || flow.seen.count(p.e2eSeq) != 0;
    if (dup) {
        // Already delivered (an earlier copy won the race). Drop the
        // duplicate quietly but re-ack: the original ack may have been
        // outrun by the retransmit timer.
        ++st.dupDrops;
        traceRel(net_, now, "dup_drop", router_, port_, p,
                 static_cast<std::int64_t>(p.e2eSeq), p.attempt);
        net_.notifyLost(f.pkt);
        sendAck(p, now);
        return;
    }
    flow.seen.insert(p.e2eSeq);
    while (flow.seen.count(flow.base) != 0) {
        flow.seen.erase(flow.base);
        ++flow.base;
    }
    if (p.attempt > 0 || p.linkRetried)
        ++st.recoveredPackets;
    st.onEject(p);
    if (obs::Tracer *t = net_.trace())
        t->flit(now, "eject", router_, p, port_, kInvalidId,
                p.latency(), p.hops);
    net_.notifyEjected(f.pkt);
    sendAck(p, now);
}

void
Nic::sendAck(const Packet &p, Cycle now)
{
    // The ack rides the protected control sideband: one cycle per hop
    // of the base topology plus the NIC hop. Model-level shortcut --
    // it never contends with data flits.
    const int d =
        net_.topo().distance(router_, net_.nic(p.src).router());
    const Cycle delay = d < 0 ? 1 : static_cast<Cycle>(d) + 1;
    net_.nic(p.src).pushAck(now + delay, id_, p.e2eSeq);
}

void
Nic::drainWires(Cycle now)
{
    drainArrivalWires(now);
    drainEjectWire(now);
}

void
Nic::injectStep(Cycle now)
{
    const fault::FaultInjector *fi = net_.faults();
    if (fi && fi->routerDead(router_)) {
        // Our attachment router died: nothing queued here can ever
        // enter the network. Retire everything so drain loops end.
        Stats &st = net_.stats();
        if (!cur_.empty()) {
            st.flitsLostToFaults += cur_.size() - curIdx_;
            ++st.packetsLostToFaults;
            // cur_[0].pkt may already be moved-from (flits hand their
            // ref over as they depart); the packet stays queue_.front()
            // until its tail leaves, so arm the backoff clock there.
            if (queue_.front()->reliable)
                armAckDeadline(*queue_.front(), now);
            net_.notifyLost(cur_[0].pkt);
            cur_.clear();
            curIdx_ = 0;
            curVc_ = kInvalidId;
            queue_.pop_front();
        }
        while (!queue_.empty()) {
            ++st.packetsUnroutable;
            // A reliable copy that dies here never departs, so its ack
            // clock would stay unarmed and the retransmit entry would
            // park forever. Arm it at the refusal instead: the ladder
            // keeps backing off and eventually abandons the flow.
            if (queue_.front()->reliable)
                armAckDeadline(*queue_.front(), now);
            net_.notifyLost(queue_.front());
            queue_.pop_front();
        }
        return;
    }

    if (cur_.empty()) {
        if (queue_.empty())
            return;
        const PacketPtr &pkt = queue_.front();

        if (fi && fi->anyPermanent() &&
            (fi->routerDead(pkt->destRouter) ||
             fi->degradedDistance(router_, pkt->destRouter) < 0)) {
            // Destination unreachable on the degraded topology; refuse
            // the packet at the source instead of wedging a VC.
            ++net_.stats().packetsUnroutable;
            if (obs::Tracer *t = net_.trace()) {
                obs::TraceEvent e;
                e.cycle = now;
                e.category = obs::kCatFault;
                e.name = "packet_unroutable";
                e.router = router_;
                e.packet = pkt->id;
                e.port = port_;
                t->record(e);
            }
            // Same unarmed-clock hazard as the dead-router drain above:
            // start the backoff at the refusal so the escalation
            // ladder still runs out and abandons the flow.
            if (pkt->reliable)
                armAckDeadline(*pkt, now);
            net_.notifyLost(pkt);
            queue_.pop_front();
            return; // one retirement per cycle keeps the step bounded
        }

        if (!pkt->sourceRouted) {
            net_.routing().sourceRoute(*pkt, router_);
            pkt->sourceRouted = true;
        }

        net_.routing().injectionVcs(*pkt, net_.router(router_),
                                    scratchVcs_);
        applyVcReservation(net_, *pkt, scratchVcs_);
        const VcId vc = tracker_.allocate(scratchVcs_, pkt->id, now);
        if (vc == kInvalidId)
            return; // no free VC at the local in-port yet
        curVc_ = vc;
        makeFlitsInto(pkt, cur_); // reuses cur_'s capacity
        curIdx_ = 0;
    }

    if (tracker_.credits(curVc_) <= 0)
        return;

    Flit &f = cur_[curIdx_];
    tracker_.consumeCredit(curVc_);

    Stats &st = net_.stats();
    if (f.isHead()) {
        f.pkt->injectCycle = now;
        ++st.packetsInjected;
        if (obs::Tracer *t = net_.trace())
            t->flit(now, "inject", router_, *f.pkt, port_, curVc_);
    }
    ++st.flitsInjected;

    // cur_ is consumed front to back, one flit per cycle; each slot is
    // dead after this push, so hand the flit over instead of copying.
    injWire_.push(now + kNicLatency, LinkFlit{std::move(f), curVc_});

    ++curIdx_;
    if (curIdx_ == cur_.size()) {
        // Tail departure: the whole packet is on the wire, so the ack
        // clock starts only now -- a long source queue never fires a
        // spurious timeout.
        if (queue_.front()->reliable)
            armAckDeadline(*queue_.front(), now);
        queue_.pop_front();
        cur_.clear();
        curIdx_ = 0;
        curVc_ = kInvalidId;
    }
}

void
Nic::armAckDeadline(Packet &p, Cycle now) const
{
    const ReliabilityConfig &rel = net_.config().reliability;
    // Exponential backoff, shift-clamped so the deadline never wraps.
    const int shift = p.attempt < 16 ? p.attempt : 16;
    p.ackDeadline = now + (rel.ackTimeout << shift);
}

void
Nic::pushAck(Cycle arrival, NodeId dest, std::uint64_t seq)
{
    ackWire_.push(arrival, AckMsg{dest, seq});
}

void
Nic::reliabilityStep(Cycle now)
{
    const ReliabilityConfig &rel = net_.config().reliability;

    ackWire_.drainInto(now, [&](const AckMsg &a) {
        for (auto it = retx_.begin(); it != retx_.end(); ++it) {
            if (it->pkt->dest == a.dest && it->pkt->e2eSeq == a.seq) {
                retx_.erase(it);
                break;
            }
        }
    });

    Stats &st = net_.stats();
    for (auto it = retx_.begin(); it != retx_.end();) {
        Packet &p = *it->pkt;

        // Livelock watchdog: "recovering" (timers armed, attempts left)
        // is fine; a packet alive past the cycle budget is "stuck" and
        // worth forensics, once.
        if (!it->alarmed && now - p.createCycle > rel.watchdogBudget) {
            it->alarmed = true;
            ++st.watchdogAlarms;
            traceRel(net_, now, "watchdog_stuck", router_, port_, p,
                     static_cast<std::int64_t>(p.e2eSeq), p.attempt);
            if (obs::Forensics *fo = net_.forensics()) {
                fo->noteFault(now, "watchdog: node " +
                                       std::to_string(id_) + " pkt#" +
                                       std::to_string(p.origId) +
                                       " stuck for " +
                                       std::to_string(now - p.createCycle) +
                                       " cycles; retx state " +
                                       retxJson(now).dump());
            }
        }

        if (p.ackDeadline == kNeverCycle || now < p.ackDeadline) {
            ++it;
            continue;
        }

        if (p.attempt >= rel.maxRetransmits) {
            // Escalation exhausted: retire the flow entry with its own
            // counter. The copy still in the network settles its own
            // in-flight accounting when it ejects or is discarded.
            ++st.packetsAbandoned;
            traceRel(net_, now, "retx_abandon", router_, port_, p,
                     static_cast<std::int64_t>(p.e2eSeq), p.attempt);
            if (obs::Forensics *fo = net_.forensics())
                fo->noteFault(now, "abandoned pkt#" +
                                       std::to_string(p.origId) +
                                       " (node " + std::to_string(id_) +
                                       " -> " + std::to_string(p.dest) +
                                       ", seq " +
                                       std::to_string(p.e2eSeq) + ") @ cycle " +
                                       std::to_string(now));
            it = retx_.erase(it);
            continue;
        }

        // Timeout: inject a fresh copy and rearm lazily (the deadline
        // is armed when the copy's tail actually leaves).
        const PacketPtr clone = net_.makeRetransmit(it->pkt);
        ++st.retransmits;
        traceRel(net_, now, "retx", router_, port_, *clone,
                 static_cast<std::int64_t>(clone->e2eSeq), clone->attempt);
        it->pkt = clone;
        ++it;
    }
}

obs::JsonValue
Nic::retxJson(Cycle now) const
{
    using obs::JsonValue;
    JsonValue o = JsonValue::object();
    o.set("node", JsonValue(id_));
    o.set("depth", JsonValue(static_cast<std::uint64_t>(retx_.size())));
    JsonValue entries = JsonValue::array();
    for (const RetxEntry &e : retx_) {
        JsonValue j = JsonValue::object();
        j.set("pkt", JsonValue(e.pkt->id));
        j.set("origId", JsonValue(e.pkt->origId));
        j.set("dest", JsonValue(e.pkt->dest));
        j.set("seq", JsonValue(e.pkt->e2eSeq));
        j.set("attempt", JsonValue(e.pkt->attempt));
        j.set("age", JsonValue(now - e.pkt->createCycle));
        j.set("deadline", e.pkt->ackDeadline == kNeverCycle
                              ? JsonValue("unarmed")
                              : JsonValue(e.pkt->ackDeadline));
        j.set("alarmed", JsonValue(e.alarmed));
        entries.push(std::move(j));
    }
    o.set("entries", std::move(entries));
    return o;
}

void
Nic::pushEject(Cycle arrival, Flit f)
{
    ejectWire_.push(arrival, std::move(f));
}

void
Nic::pushCredit(Cycle arrival, VcId vc, bool is_free)
{
    credWire_.push(arrival, CreditMsg{vc, is_free});
}

} // namespace spin
