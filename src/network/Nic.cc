#include "network/Nic.hh"

#include "common/Logging.hh"
#include "network/Network.hh"
#include "obs/Tracer.hh"
#include "routing/RoutingAlgorithm.hh"

namespace spin
{

Nic::Nic(Network &net, NodeId id)
    : net_(net),
      id_(id),
      router_(net.topo().routerOfNode(id)),
      port_(net.topo().portOfNode(id)),
      tracker_(port_, false, net.config().totalVcs(), net.config().vcDepth)
{
}

void
Nic::offer(const PacketPtr &pkt)
{
    SPIN_ASSERT(pkt->src == id_, "packet offered to wrong NIC");
    queue_.push_back(pkt);
}

std::size_t
Nic::queueLength() const
{
    return queue_.size();
}

void
Nic::drainWires(Cycle now)
{
    injWire_.drainInto(now, [&](LinkFlit &lf) {
        net_.router(router_).receiveFlit(port_, lf.vc,
                                         std::move(lf.flit));
    });

    ejectWire_.drainInto(now, [&](const Flit &f) {
        if (f.isTail()) {
            f.pkt->ejectCycle = now;
            net_.stats().onEject(*f.pkt);
            if (obs::Tracer *t = net_.trace())
                t->flit(now, "eject", router_, *f.pkt, port_, kInvalidId,
                        f.pkt->latency(), f.pkt->hops);
            net_.notifyEjected(f.pkt);
        }
    });

    credWire_.drainInto(now, [&](const CreditMsg &c) {
        tracker_.onCredit(c.vc, c.isFree, now);
    });
}

void
Nic::injectStep(Cycle now)
{
    if (cur_.empty()) {
        if (queue_.empty())
            return;
        const PacketPtr &pkt = queue_.front();

        if (!pkt->sourceRouted) {
            net_.routing().sourceRoute(*pkt, router_);
            pkt->sourceRouted = true;
        }

        net_.routing().injectionVcs(*pkt, net_.router(router_),
                                    scratchVcs_);
        applyVcReservation(net_, *pkt, scratchVcs_);
        const VcId vc = tracker_.allocate(scratchVcs_, pkt->id, now);
        if (vc == kInvalidId)
            return; // no free VC at the local in-port yet
        curVc_ = vc;
        makeFlitsInto(pkt, cur_); // reuses cur_'s capacity
        curIdx_ = 0;
    }

    if (tracker_.credits(curVc_) <= 0)
        return;

    Flit &f = cur_[curIdx_];
    tracker_.consumeCredit(curVc_);

    Stats &st = net_.stats();
    if (f.isHead()) {
        f.pkt->injectCycle = now;
        ++st.packetsInjected;
        if (obs::Tracer *t = net_.trace())
            t->flit(now, "inject", router_, *f.pkt, port_, curVc_);
    }
    ++st.flitsInjected;

    // cur_ is consumed front to back, one flit per cycle; each slot is
    // dead after this push, so hand the flit over instead of copying.
    injWire_.push(now + kNicLatency, LinkFlit{std::move(f), curVc_});

    ++curIdx_;
    if (curIdx_ == cur_.size()) {
        queue_.pop_front();
        cur_.clear();
        curIdx_ = 0;
        curVc_ = kInvalidId;
    }
}

void
Nic::pushEject(Cycle arrival, Flit f)
{
    ejectWire_.push(arrival, std::move(f));
}

void
Nic::pushCredit(Cycle arrival, VcId vc, bool is_free)
{
    credWire_.push(arrival, CreditMsg{vc, is_free});
}

} // namespace spin
