#include "network/Nic.hh"

#include "common/Logging.hh"
#include "fault/FaultInjector.hh"
#include "network/Network.hh"
#include "obs/Tracer.hh"
#include "routing/RoutingAlgorithm.hh"

namespace spin
{

Nic::Nic(Network &net, NodeId id)
    : net_(net),
      id_(id),
      router_(net.topo().routerOfNode(id)),
      port_(net.topo().portOfNode(id)),
      tracker_(port_, false, net.config().totalVcs(), net.config().vcDepth)
{
}

void
Nic::offer(const PacketPtr &pkt)
{
    SPIN_ASSERT(pkt->src == id_, "packet offered to wrong NIC");
    queue_.push_back(pkt);
}

std::size_t
Nic::queueLength() const
{
    return queue_.size();
}

void
Nic::drainArrivalWires(Cycle now)
{
    injWire_.drainInto(now, [&](LinkFlit &lf) {
        net_.router(router_).receiveFlit(port_, lf.vc,
                                         std::move(lf.flit));
    });

    credWire_.drainInto(now, [&](const CreditMsg &c) {
        tracker_.onCredit(c.vc, c.isFree, now);
    });
}

void
Nic::drainEjectWire(Cycle now)
{
    ejectWire_.drainInto(now, [&](const Flit &f) {
        if (f.isTail()) {
            f.pkt->ejectCycle = now;
            // A drop-marked packet is discarded by the end node (CRC
            // reject); it still ejected, so flow control is untouched
            // and only the accounting differs.
            if (f.pkt->faultDropped)
                ++net_.stats().packetsDroppedAtNic;
            net_.stats().onEject(*f.pkt);
            if (obs::Tracer *t = net_.trace())
                t->flit(now, "eject", router_, *f.pkt, port_, kInvalidId,
                        f.pkt->latency(), f.pkt->hops);
            net_.notifyEjected(f.pkt);
        }
    });
}

void
Nic::drainWires(Cycle now)
{
    drainArrivalWires(now);
    drainEjectWire(now);
}

void
Nic::injectStep(Cycle now)
{
    const fault::FaultInjector *fi = net_.faults();
    if (fi && fi->routerDead(router_)) {
        // Our attachment router died: nothing queued here can ever
        // enter the network. Retire everything so drain loops end.
        Stats &st = net_.stats();
        if (!cur_.empty()) {
            st.flitsLostToFaults += cur_.size() - curIdx_;
            ++st.packetsLostToFaults;
            net_.notifyLost(cur_[0].pkt);
            cur_.clear();
            curIdx_ = 0;
            curVc_ = kInvalidId;
            queue_.pop_front();
        }
        while (!queue_.empty()) {
            ++st.packetsUnroutable;
            net_.notifyLost(queue_.front());
            queue_.pop_front();
        }
        return;
    }

    if (cur_.empty()) {
        if (queue_.empty())
            return;
        const PacketPtr &pkt = queue_.front();

        if (fi && fi->anyPermanent() &&
            (fi->routerDead(pkt->destRouter) ||
             fi->degradedDistance(router_, pkt->destRouter) < 0)) {
            // Destination unreachable on the degraded topology; refuse
            // the packet at the source instead of wedging a VC.
            ++net_.stats().packetsUnroutable;
            if (obs::Tracer *t = net_.trace()) {
                obs::TraceEvent e;
                e.cycle = now;
                e.category = obs::kCatFault;
                e.name = "packet_unroutable";
                e.router = router_;
                e.packet = pkt->id;
                e.port = port_;
                t->record(e);
            }
            net_.notifyLost(pkt);
            queue_.pop_front();
            return; // one retirement per cycle keeps the step bounded
        }

        if (!pkt->sourceRouted) {
            net_.routing().sourceRoute(*pkt, router_);
            pkt->sourceRouted = true;
        }

        net_.routing().injectionVcs(*pkt, net_.router(router_),
                                    scratchVcs_);
        applyVcReservation(net_, *pkt, scratchVcs_);
        const VcId vc = tracker_.allocate(scratchVcs_, pkt->id, now);
        if (vc == kInvalidId)
            return; // no free VC at the local in-port yet
        curVc_ = vc;
        makeFlitsInto(pkt, cur_); // reuses cur_'s capacity
        curIdx_ = 0;
    }

    if (tracker_.credits(curVc_) <= 0)
        return;

    Flit &f = cur_[curIdx_];
    tracker_.consumeCredit(curVc_);

    Stats &st = net_.stats();
    if (f.isHead()) {
        f.pkt->injectCycle = now;
        ++st.packetsInjected;
        if (obs::Tracer *t = net_.trace())
            t->flit(now, "inject", router_, *f.pkt, port_, curVc_);
    }
    ++st.flitsInjected;

    // cur_ is consumed front to back, one flit per cycle; each slot is
    // dead after this push, so hand the flit over instead of copying.
    injWire_.push(now + kNicLatency, LinkFlit{std::move(f), curVc_});

    ++curIdx_;
    if (curIdx_ == cur_.size()) {
        queue_.pop_front();
        cur_.clear();
        curIdx_ = 0;
        curVc_ = kInvalidId;
    }
}

void
Nic::pushEject(Cycle arrival, Flit f)
{
    ejectWire_.push(arrival, std::move(f));
}

void
Nic::pushCredit(Cycle arrival, VcId vc, bool is_free)
{
    credWire_.push(arrival, CreditMsg{vc, is_free});
}

} // namespace spin
