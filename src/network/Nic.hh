/**
 * @file
 * Network interface controller: injects packets offered by the traffic
 * layer into its router's local input port (acquiring VCs like any
 * upstream router would) and ejects arriving packets without stalls, as
 * the paper assumes.
 */

#ifndef SPINNOC_NETWORK_NIC_HH
#define SPINNOC_NETWORK_NIC_HH

#include <deque>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/Packet.hh"
#include "common/Types.hh"
#include "network/Link.hh"
#include "obs/Json.hh"
#include "router/OutputUnit.hh"
#include "sim/DelayLine.hh"

namespace spin
{

class Network;

/** End-to-end acknowledgement riding the protected sideband back to the
 *  source NIC (reliability layer, docs/FAULTS.md). */
struct AckMsg
{
    /** Destination node of the acked flow (the acking NIC). */
    NodeId dest = kInvalidId;
    /** Acked per-flow sequence number. */
    std::uint64_t seq = 0;
};

/** See file comment. NIC links have 1-cycle latency in each direction. */
class Nic
{
  public:
    Nic(Network &net, NodeId id);

    NodeId id() const { return id_; }
    RouterId router() const { return router_; }
    PortId port() const { return port_; }

    /** Queue a packet for injection (unbounded source queue). */
    void offer(const PacketPtr &pkt);
    /** Packets waiting, including the one currently streaming. */
    std::size_t queueLength() const;

    /// @name Per-cycle phases, called by Network::step()
    /// @{
    /**
     * Deliver injection-wire flits into the attached router and credit
     * arrivals into the local tracker. Shard-parallel: touches only
     * this NIC and its attachment router (same shard by construction).
     */
    void drainArrivalWires(Cycle now);
    /**
     * Retire tail flits off the eject wire: latency/eject accounting,
     * the eject trace event, and Network::notifyEjected (whose listener
     * may create new packets). Serial phase -- packet-id allocation and
     * in-flight accounting need one canonical order.
     */
    void drainEjectWire(Cycle now);
    /** Both of the above; single-threaded convenience for tests. */
    void drainWires(Cycle now);
    /** Try to push one flit of the current packet toward the router. */
    void injectStep(Cycle now);
    /**
     * End-to-end reliability phase (reliability.enabled only): drain
     * arriving acks, fire expired retransmit timers (exponential
     * backoff, escalation to abandonment past maxRetransmits), and run
     * the livelock watchdog. Serial phase -- retransmission allocates
     * packet ids and must happen in canonical NIC order.
     */
    void reliabilityStep(Cycle now);
    /// @}

    /** Called by the router side: flit ejected toward this NIC. */
    void pushEject(Cycle arrival, Flit f);
    /** Called by the router side: credit for local in-port VC @p vc. */
    void pushCredit(Cycle arrival, VcId vc, bool is_free);
    /** Called by a destination NIC (serial eject phase): ack of
     *  sequence @p seq on this NIC's flow to @p dest. */
    void pushAck(Cycle arrival, NodeId dest, std::uint64_t seq);

    /// @name Reliability inspection (forensics, chaos audits)
    /// @{
    /** Unacked packets tracked for retransmission. */
    std::size_t retxQueueLength() const { return retx_.size(); }
    /** Retransmit-queue state document (watchdog forensics dumps). */
    obs::JsonValue retxJson(Cycle now) const;
    /// @}

    /** Upstream view of the router's local in-port VCs. */
    const OutputUnit &tracker() const { return tracker_; }

    /// @name State-digest inspection (model checker)
    /// @{
    /** Flits of the current packet still to stream into the router. */
    std::size_t streamRemaining() const { return cur_.size() - curIdx_; }
    /** VC the current packet is streaming into; kInvalidId when idle. */
    VcId streamVc() const { return curVc_; }
    /** Visit queued (not yet streaming) packets in order. */
    template <typename F>
    void
    forEachQueued(F &&fn) const
    {
        for (const PacketPtr &p : queue_)
            fn(*p);
    }
    /** Visit in-flight injection flits as (arrival, LinkFlit). */
    template <typename F>
    void
    forEachInjFlit(F &&fn) const
    {
        injWire_.forEach(fn);
    }
    /** Visit in-flight ejection flits as (arrival, Flit). */
    template <typename F>
    void
    forEachEjectFlit(F &&fn) const
    {
        ejectWire_.forEach(fn);
    }
    /** Visit in-flight NIC credits as (arrival, CreditMsg). */
    template <typename F>
    void
    forEachCredit(F &&fn) const
    {
        credWire_.forEach(fn);
    }
    /// @}

  private:
    Network &net_;
    NodeId id_;
    RouterId router_;
    PortId port_;

    std::deque<PacketPtr> queue_;
    /** Flits of the packet currently streaming in; curIdx_ is next. */
    std::vector<Flit> cur_;
    std::size_t curIdx_ = 0;
    VcId curVc_ = kInvalidId;

    OutputUnit tracker_;
    /** Scratch for injectionVcs(), reused to avoid per-packet churn. */
    std::vector<VcId> scratchVcs_;
    DelayLine<LinkFlit> injWire_;
    DelayLine<Flit> ejectWire_;
    DelayLine<CreditMsg> credWire_;

    /// @name End-to-end reliability state (reliability.enabled)
    /// @{
    /** One unacked packet; the PacketPtr is swapped for the newest
     *  retransmitted copy on each timeout. */
    struct RetxEntry
    {
        PacketPtr pkt;
        /** Watchdog already fired for this packet (one-shot). */
        bool alarmed = false;
    };
    /** Sent-but-unacked packets, oldest first. */
    std::deque<RetxEntry> retx_;
    /** Next sequence number per destination node (this NIC as source).
     *  Looked up only (never iterated), so the map is deterministic. */
    std::unordered_map<NodeId, std::uint64_t> nextSeq_;
    /** Duplicate-suppression window of one incoming flow: every
     *  sequence < base was delivered; sparse later arrivals sit in
     *  seen until base catches up. Protocol state, deliberately NOT
     *  reset by beginMeasurement(). */
    struct FlowState
    {
        std::uint64_t base = 0;
        std::set<std::uint64_t> seen;
    };
    /** Per-source-node incoming flows (this NIC as destination). */
    std::unordered_map<NodeId, FlowState> flows_;
    /** Acks in flight toward this (source) NIC. */
    DelayLine<AckMsg> ackWire_;
    /// @}

    void sendAck(const Packet &p, Cycle now);
    void armAckDeadline(Packet &p, Cycle now) const;
    void retireReliable(const Flit &f, Cycle now);

    static constexpr Cycle kNicLatency = 1;
};

} // namespace spin

#endif // SPINNOC_NETWORK_NIC_HH
