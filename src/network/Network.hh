/**
 * @file
 * The assembled network: routers, links, NICs, the routing algorithm,
 * the deadlock-freedom machinery, and the per-cycle phase schedule.
 *
 * Phase order within one cycle (see DESIGN.md):
 *   1. wire arrivals (flits, credits) are delivered
 *   2. SPIN special-message phase (arrivals processed, forwards contend
 *      for links and block flits below)
 *   3. SPIN rotation phase (synchronized one-hop movement)
 *   4. Static Bubble recovery grants (when that baseline is active)
 *   5. NIC injection
 *   6. route compute + VC allocation
 *   7. switch allocation + link traversal
 *   8. SPIN FSM timers (expiries schedule SMs for the next cycle)
 *   9. clock tick
 */

#ifndef SPINNOC_NETWORK_NETWORK_HH
#define SPINNOC_NETWORK_NETWORK_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/Config.hh"
#include "common/Packet.hh"
#include "common/Random.hh"
#include "common/Types.hh"
#include "network/Link.hh"
#include "network/Nic.hh"
#include "obs/Samplers.hh"
#include "obs/TraceEvent.hh"
#include "router/Router.hh"
#include "sim/Clock.hh"
#include "stats/Stats.hh"
#include "topology/Topology.hh"

namespace spin
{

namespace obs
{
class Tracer;
class Forensics;
class JsonValue;
class NetworkMetrics;
struct MetricsConfig;
class MetricsSink;
class PhaseProfiler;
} // namespace obs

namespace fault
{
class FaultInjector;
struct FaultSchedule;
} // namespace fault

class RoutingAlgorithm;
class SpinManager;
class StaticBubbleUnit;
class StepExecutor;

/**
 * Per-thread staging for the parallel phases of Network::step(): each
 * worker redirects its cross-shard side effects (statistics, trace
 * events, in-flight retirements) here and the coordinator commits the
 * buffers in shard order at the phase barrier, so merged output is
 * bit-identical for any thread count (docs/SCALING.md).
 */
struct StepShard
{
    /** Counter deltas of this shard's phase; merged via
     *  Stats::mergeFrom, then zeroed. */
    Stats stats;
    /** Raw trace events in shard-local emission order. */
    std::vector<obs::TraceEvent> events;
    /** Packets retired without ejecting (Network::notifyLost). */
    std::uint64_t lost = 0;
};

/** Installed while a worker executes a shard; redirects
 *  Network::stats() and Network::notifyLost() into the shard. */
extern thread_local StepShard *tlsStepShard;

/** Aggregate link-utilization summary (Fig. 8b). */
struct LinkUsage
{
    std::uint64_t flitCycles = 0;
    std::uint64_t probeCycles = 0;
    std::uint64_t moveCycles = 0;
    std::uint64_t idleCycles = 0;
    std::uint64_t totalCycles = 0;

    double frac(std::uint64_t c) const
    {
        return totalCycles ? double(c) / totalCycles : 0.0;
    }
};

/** See file comment. */
class Network
{
  public:
    /**
     * Assemble a network.
     *
     * @param topo finalized topology (shared, immutable)
     * @param cfg  microarchitecture + deadlock-scheme parameters
     * @param routing routing algorithm (ownership transferred)
     */
    Network(std::shared_ptr<const Topology> topo, const NetworkConfig &cfg,
            std::unique_ptr<RoutingAlgorithm> routing);
    ~Network();

    Network(const Network &) = delete;
    Network &operator=(const Network &) = delete;

    /// @name Simulation control
    /// @{
    /** Advance one cycle. */
    void step();
    /** Advance @p cycles cycles. */
    void run(Cycle cycles);
    Cycle now() const { return clock_.now(); }
    /// @}

    /// @name Component access
    /// @{
    const Topology &topo() const { return *topo_; }
    const NetworkConfig &config() const { return cfg_; }
    int numRouters() const { return topo_->numRouters(); }
    int numNodes() const { return topo_->numNodes(); }
    Router &router(RouterId r) { return *routers_[r]; }
    const Router &router(RouterId r) const { return *routers_[r]; }
    Nic &nic(NodeId n) { return *nics_[n]; }
    RoutingAlgorithm &routing() { return *routing_; }
    const RoutingAlgorithm &routing() const { return *routing_; }
    Random &rng() { return rng_; }
    /** Statistics accumulator. During a parallel phase of the sharded
     *  step loop each worker sees its own staging Stats (committed in
     *  shard order at the barrier); everywhere else this is the master
     *  accumulator. */
    Stats &
    stats()
    {
        StepShard *const sh = tlsStepShard;
        return sh != nullptr ? sh->stats : stats_;
    }
    /** Master accumulator; only meaningful between phases. */
    const Stats &stats() const { return stats_; }
    /** Worker threads driving step(); 1 = serial (clamped to the
     *  router count at construction). Results are bit-identical for
     *  any value (docs/SCALING.md). */
    int threads() const { return threads_; }
    /** SPIN manager; nullptr unless cfg.scheme == Spin. */
    SpinManager *spinManager() { return spinMgr_.get(); }
    /// @}

    /// @name Links
    /// @{
    int numLinks() const { return static_cast<int>(links_.size()); }
    Link &link(int idx) { return links_[idx]; }
    /** Out-link of (r, port); nullptr for NIC / unwired ports. */
    Link *outLinkOf(RouterId r, PortId port);
    const Link *outLinkOf(RouterId r, PortId port) const;
    /** In-link feeding (r, port); nullptr for NIC / unwired ports. */
    Link *inLinkOf(RouterId r, PortId port);
    /** Index of the out-link of (r, port), -1 when unwired. */
    int linkIndexOf(RouterId r, PortId port) const
    {
        return outIdx_[r][port];
    }
    /** Buffered-flit counter slot for router @p r. Routers keep their
     *  count here so step()'s idle-skip scan reads one contiguous
     *  array instead of touching every Router object. Stable address:
     *  sized before any router is constructed. */
    int &routerLoadSlot(RouterId r) { return routerLoad_[r]; }
    /** NIC attached at (r, port). @pre the port is a NIC port. */
    Nic &nicAt(RouterId r, PortId port);
    /// @}

    /// @name Traffic API
    /// @{
    /** Create a packet record with id / destRouter / createCycle set. */
    PacketPtr makePacket(NodeId src, NodeId dest, VnetId vnet,
                         int size_flits);
    /** Hand a packet to its source NIC. */
    void offerPacket(const PacketPtr &pkt);
    /**
     * Clone @p orig as an end-to-end retransmission and offer it to the
     * source NIC: fresh packet id, same flow identity (src, dest, vnet,
     * size, e2eSeq, origId, createCycle), attempt bumped. Serial-phase
     * only (allocates a packet id). Reliability layer, docs/FAULTS.md.
     */
    PacketPtr makeRetransmit(const PacketPtr &orig);
    /** Callback fired when a packet fully ejects (coherence traffic). */
    void setEjectListener(std::function<void(const PacketPtr &)> fn);
    /** Called by NICs on tail ejection. */
    void notifyEjected(const PacketPtr &pkt);
    /** Called when a packet is retired without ejecting (purged as
     *  unroutable or lost to a dead router). Balances offerPacket's
     *  in-flight count so drain loops still terminate under faults. */
    void notifyLost(const PacketPtr &pkt);
    /** Packets currently inside NIC queues or the network. */
    std::uint64_t packetsInFlight() const { return inFlight_; }
    /// @}

    /// @name Measurement helpers
    /// @{
    /** Reset stats and per-link counters; opens a measurement window. */
    void beginMeasurement();
    /** Utilization summary over router-to-router links. */
    LinkUsage linkUsage() const;
    /// @}

    /// @name Observability (src/obs)
    /// @{
    /**
     * Active tracer, nullptr when tracing is disabled. Instrumentation
     * hooks branch on this pointer -- the null fast path is the whole
     * cost of disabled tracing.
     */
    obs::Tracer *trace() { return tracer_.get(); }
    /** Attach (or, with nullptr, detach) a tracer. */
    void setTracer(std::unique_ptr<obs::Tracer> tracer);

    /** Active samplers, nullptr until enableSampling(). */
    obs::NetworkSamplers *samplers() { return samplers_.get(); }
    const obs::NetworkSamplers *samplers() const { return samplers_.get(); }
    /** Start periodic sampling; replaces any previous sampler set. */
    obs::NetworkSamplers &enableSampling(const obs::SamplerConfig &cfg = {});

    /** Active forensics recorder, nullptr until enableForensics(). */
    obs::Forensics *forensics() { return forensics_.get(); }
    const obs::Forensics *forensics() const { return forensics_.get(); }
    /** Start capturing loop snapshots on probe return / oracle report. */
    obs::Forensics &enableForensics(std::size_t max_records = 64);

    /** Active windowed-metrics publisher, nullptr until enableMetrics(). */
    obs::NetworkMetrics *metrics() { return metrics_.get(); }
    const obs::NetworkMetrics *metrics() const { return metrics_.get(); }
    /** Start windowed metrics publication into @p sink; replaces any
     *  previous publisher (the old one emits its finish record). */
    obs::NetworkMetrics &enableMetrics(const obs::MetricsConfig &cfg,
                                       std::unique_ptr<obs::MetricsSink> sink);

    /** Active self-profiler, nullptr until enableProfiler(). */
    obs::PhaseProfiler *profiler() { return profiler_.get(); }
    const obs::PhaseProfiler *profiler() const { return profiler_.get(); }
    /** Start attributing wall-clock time to step() phases. */
    obs::PhaseProfiler &enableProfiler();

    /** Everything machine-readable in one document: config, cycle,
     *  stats, link usage, sampler series, forensic snapshots. */
    obs::JsonValue telemetryJson() const;
    /** Write telemetryJson() to @p path. @return false on I/O error. */
    bool dumpTelemetry(const std::string &path) const;
    /// @}

    /// @name Fault injection (src/fault)
    /// @{
    /** Attach a fault schedule (validated against the topology);
     *  replaces any previous injector. Call before running. */
    fault::FaultInjector &attachFaults(fault::FaultSchedule schedule);
    /** Active injector, nullptr when the run is fault-free. */
    fault::FaultInjector *faults() { return faults_.get(); }
    const fault::FaultInjector *faults() const { return faults_.get(); }
    /// @}

  private:
    std::shared_ptr<const Topology> topo_;
    NetworkConfig cfg_;
    std::unique_ptr<RoutingAlgorithm> routing_;
    Clock clock_;
    Random rng_;
    Stats stats_;

    std::vector<std::unique_ptr<Router>> routers_;
    /** See routerLoadSlot(). */
    std::vector<int> routerLoad_;
    std::vector<std::unique_ptr<Nic>> nics_;
    /** Flat storage: links are hot (drained every cycle) and fixed
     *  after construction, so they live contiguously. */
    std::vector<Link> links_;
    /** (router, port) -> link index or -1, both directions. */
    std::vector<std::vector<std::int32_t>> outIdx_;
    std::vector<std::vector<std::int32_t>> inIdx_;
    /** (router, port) -> node id for NIC ports, else -1. */
    std::vector<std::vector<NodeId>> nicIdx_;

    std::unique_ptr<SpinManager> spinMgr_;
    std::vector<std::unique_ptr<StaticBubbleUnit>> bubbles_;

    std::unique_ptr<obs::Tracer> tracer_;
    std::unique_ptr<obs::NetworkSamplers> samplers_;
    std::unique_ptr<obs::Forensics> forensics_;
    std::unique_ptr<fault::FaultInjector> faults_;
    /** Declared after the components its registry closures read, so it
     *  is destroyed (emitting its finish record) while they are live. */
    std::unique_ptr<obs::NetworkMetrics> metrics_;
    std::unique_ptr<obs::PhaseProfiler> profiler_;

    std::function<void(const PacketPtr &)> ejectListener_;
    PacketId nextPacketId_ = 1;
    std::uint64_t inFlight_ = 0;
    Cycle usageWindowStart_ = 0;

    /// @name Sharded step loop (docs/SCALING.md)
    /// @{
    /** Run @p fn(s) for every shard: inline when threads_ == 1,
     *  else on the executor with staging installed, followed by an
     *  in-shard-order commit of the staged side effects. */
    void runSharded(const std::function<void(int)> &fn);
    /** Merge every shard's staged stats / trace events / lost count
     *  into the master state, in shard order. */
    void commitShards();
    /** Wire-arrival phase of shard @p s: flit queues of links ending in
     *  the shard, credit queues of links starting in it, NIC arrival
     *  wires of its nodes. */
    void drainWiresShard(int s, Cycle now);

    /** Worker count after clamping to the router count. */
    int threads_ = 1;
    /** Present only when threads_ > 1. */
    std::unique_ptr<StepExecutor> exec_;
    /** Staging buffers, one per shard; empty when threads_ == 1. */
    std::vector<StepShard> shards_;
    /** Router-id shard bounds: shard s owns [shardLo_[s],
     *  shardLo_[s+1]). Contiguous ranges make shard-order commits
     *  reproduce the serial router iteration order. */
    std::vector<RouterId> shardLo_;
    /** Per shard: indices of links whose flit queue the shard drains
     *  (dst router in shard), ordered by (dst router, dst port). */
    std::vector<std::vector<std::int32_t>> shardFlitLinks_;
    /** Per shard: indices of links whose credit queue the shard drains
     *  (src router in shard), ordered by (src router, src port). */
    std::vector<std::vector<std::int32_t>> shardCreditLinks_;
    /** Per shard: its nodes, ordered by (attachment router, node id);
     *  concatenation over shards is the canonical NIC order. */
    std::vector<std::vector<NodeId>> shardNics_;
    /// @}
};

} // namespace spin

#endif // SPINNOC_NETWORK_NETWORK_HH
