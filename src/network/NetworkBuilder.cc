#include "network/NetworkBuilder.hh"

#include "common/Logging.hh"
#include "core/Favors.hh"
#include "routing/DimensionOrder.hh"
#include "routing/EscapeVc.hh"
#include "routing/MinimalAdaptive.hh"
#include "routing/TorusBubble.hh"
#include "routing/Ugal.hh"
#include "routing/WestFirst.hh"

namespace spin
{

std::string
toString(RoutingKind k)
{
    switch (k) {
      case RoutingKind::XyDor:           return "xy-dor";
      case RoutingKind::WestFirst:       return "west-first";
      case RoutingKind::MinimalAdaptive: return "minimal-adaptive";
      case RoutingKind::EscapeVc:        return "escape-vc";
      case RoutingKind::TorusBubble:     return "torus-bubble-dor";
      case RoutingKind::UgalDally:       return "ugal-dally";
      case RoutingKind::UgalSpin:        return "ugal-spin";
      case RoutingKind::FavorsMin:       return "favors-min";
      case RoutingKind::FavorsNMin:      return "favors-nmin";
    }
    return "?";
}

std::unique_ptr<RoutingAlgorithm>
makeRouting(RoutingKind k)
{
    switch (k) {
      case RoutingKind::XyDor:
        return std::make_unique<DimensionOrder>();
      case RoutingKind::WestFirst:
        return std::make_unique<WestFirst>();
      case RoutingKind::MinimalAdaptive:
        return std::make_unique<MinimalAdaptive>();
      case RoutingKind::EscapeVc:
        return std::make_unique<EscapeVc>();
      case RoutingKind::TorusBubble:
        return std::make_unique<TorusBubble>();
      case RoutingKind::UgalDally:
        return std::make_unique<Ugal>(true);
      case RoutingKind::UgalSpin:
        return std::make_unique<Ugal>(false);
      case RoutingKind::FavorsMin:
        return std::make_unique<FavorsMinimal>();
      case RoutingKind::FavorsNMin:
        return std::make_unique<FavorsNonMinimal>();
    }
    SPIN_PANIC("unknown routing kind");
}

std::unique_ptr<Network>
buildNetwork(std::shared_ptr<const Topology> topo, NetworkConfig cfg,
             RoutingKind kind)
{
    return std::make_unique<Network>(std::move(topo), cfg,
                                     makeRouting(kind));
}

namespace
{

NetworkConfig
baseCfg(const std::string &name, int vcs_per_vnet, DeadlockScheme scheme)
{
    NetworkConfig cfg;
    cfg.name = name;
    cfg.vnets = 3; // directory protocol: req / fwd / resp
    cfg.vcsPerVnet = vcs_per_vnet;
    cfg.vcDepth = 5;
    cfg.maxPacketSize = 5;
    cfg.scheme = scheme;
    return cfg;
}

} // namespace

std::vector<ConfigPreset>
meshPresets3Vc()
{
    return {
        {"WestFirst_3VC",
         baseCfg("WestFirst_3VC", 3, DeadlockScheme::None),
         RoutingKind::WestFirst},
        {"EscapeVC_3VC",
         baseCfg("EscapeVC_3VC", 3, DeadlockScheme::None),
         RoutingKind::EscapeVc},
        {"StaticBubble_3VC",
         baseCfg("StaticBubble_3VC", 3, DeadlockScheme::StaticBubble),
         RoutingKind::MinimalAdaptive},
        {"MinAdaptive_3VC_SPIN",
         baseCfg("MinAdaptive_3VC_SPIN", 3, DeadlockScheme::Spin),
         RoutingKind::MinimalAdaptive},
    };
}

std::vector<ConfigPreset>
meshPresets1Vc()
{
    return {
        {"WestFirst_1VC",
         baseCfg("WestFirst_1VC", 1, DeadlockScheme::None),
         RoutingKind::WestFirst},
        {"FAvORS_Min_1VC_SPIN",
         baseCfg("FAvORS_Min_1VC_SPIN", 1, DeadlockScheme::Spin),
         RoutingKind::FavorsMin},
    };
}

std::vector<ConfigPreset>
dragonflyPresets3Vc()
{
    return {
        {"UGAL_3VC_Dally",
         baseCfg("UGAL_3VC_Dally", 3, DeadlockScheme::None),
         RoutingKind::UgalDally},
        {"UGAL_3VC_SPIN",
         baseCfg("UGAL_3VC_SPIN", 3, DeadlockScheme::Spin),
         RoutingKind::UgalSpin},
    };
}

std::vector<ConfigPreset>
dragonflyPresets1Vc()
{
    return {
        {"Minimal_1VC_SPIN",
         baseCfg("Minimal_1VC_SPIN", 1, DeadlockScheme::Spin),
         RoutingKind::MinimalAdaptive},
        {"FAvORS_NMin_1VC_SPIN",
         baseCfg("FAvORS_NMin_1VC_SPIN", 1, DeadlockScheme::Spin),
         RoutingKind::FavorsNMin},
    };
}

} // namespace spin
