#include "analysis/CdgAnalyzer.hh"

#include <algorithm>
#include <set>
#include <sstream>

#include "common/Logging.hh"
#include "network/Network.hh"
#include "routing/RoutingAlgorithm.hh"
#include "routing/WestFirst.hh"

namespace spin::analysis
{

std::string
toString(Verdict v)
{
    switch (v) {
      case Verdict::Acyclic:                 return "acyclic";
      case Verdict::EscapeProtected:         return "escape-protected";
      case Verdict::FlowControlProtected:    return "flow-control-protected";
      case Verdict::RecoverableSpin:         return "recoverable-spin";
      case Verdict::RecoverableStaticBubble: return "recoverable-static-bubble";
      case Verdict::Deadlockable:            return "deadlockable";
      case Verdict::Inconclusive:            return "inconclusive";
    }
    return "?";
}

std::string
theoryClass(Verdict v)
{
    switch (v) {
      case Verdict::Acyclic:                 return "routing restriction";
      case Verdict::EscapeProtected:         return "escape VCs (Duato)";
      case Verdict::FlowControlProtected:    return "flow control (bubble)";
      case Verdict::RecoverableSpin:         return "recovery (SPIN)";
      case Verdict::RecoverableStaticBubble: return "recovery (static bubble)";
      case Verdict::Deadlockable:            return "none (deadlock-prone)";
      case Verdict::Inconclusive:            return "unknown";
    }
    return "?";
}

bool
verdictDeadlockFree(Verdict v)
{
    return v != Verdict::Deadlockable && v != Verdict::Inconclusive;
}

bool
verdictSelfSufficient(Verdict v)
{
    return v == Verdict::Acyclic || v == Verdict::EscapeProtected ||
           v == Verdict::FlowControlProtected;
}

obs::JsonValue
WitnessCycle::toJson() const
{
    obs::JsonValue j = obs::JsonValue::object();
    j.set("length", length);
    j.set("verified", verified);
    j.set("spin_recoverable", spinRecoverable);
    j.set("spin_bound", spinBound);
    obs::JsonValue chans = obs::JsonValue::array();
    for (const StaticChannel &c : channels) {
        obs::JsonValue jc = obs::JsonValue::object();
        jc.set("src", c.src);
        jc.set("src_port", c.srcPort);
        jc.set("dst", c.dst);
        jc.set("dst_port", c.dstPort);
        jc.set("vc", c.vc);
        chans.push(std::move(jc));
    }
    j.set("channels", std::move(chans));
    return j;
}

obs::JsonValue
AnalysisReport::toJson() const
{
    obs::JsonValue j = obs::JsonValue::object();
    j.set("topology", topology);
    j.set("routing", routing);
    j.set("scheme", scheme);
    j.set("vnet", vnet);
    j.set("vcs_per_vnet", vcsPerVnet);
    j.set("verdict", analysis::toString(verdict));
    j.set("theory_class", theoryClass(verdict));
    j.set("deadlock_free", verdictDeadlockFree(verdict));
    j.set("declared_self_deadlock_free", declaredSelfFree);
    j.set("contract_ok", contractOk);
    if (!contractNote.empty())
        j.set("contract_note", contractNote);
    j.set("channels_used", channelsUsed);
    j.set("dependencies", dependencies);
    j.set("states_visited", statesVisited);
    j.set("cyclic_sccs", cyclicSccs);
    j.set("largest_scc", largestScc);
    if (escapeDeclared) {
        obs::JsonValue e = obs::JsonValue::object();
        e.set("acyclic", escapeAcyclic);
        e.set("always_reachable", escapeAlwaysReachable);
        e.set("closed", escapeClosed);
        j.set("escape", std::move(e));
    }
    if (probeBudget > 0)
        j.set("probe_budget", probeBudget);
    obs::JsonValue w = obs::JsonValue::array();
    for (const WitnessCycle &c : witnesses)
        w.push(c.toJson());
    j.set("witnesses", std::move(w));
    return j;
}

std::string
AnalysisReport::summary() const
{
    std::ostringstream os;
    os << topology << " / " << routing << " / " << scheme << " / "
       << vcsPerVnet << " VC: " << analysis::toString(verdict) << " ["
       << theoryClass(verdict) << "], " << channelsUsed << " channels, "
       << dependencies << " deps, " << cyclicSccs << " cyclic SCCs"
       << (witnesses.empty()
               ? ""
               : ", shortest witness " +
                     std::to_string(witnesses.front().length))
       << "; contract " << (contractOk ? "ok" : "VIOLATED");
    return os.str();
}

CdgAnalyzer::CdgAnalyzer(const Network &net) : net_(net), builder_(net)
{
}

int
CdgAnalyzer::probeBudget() const
{
    // Mirrors SpinManager's effective probe cap: an explicit config
    // value wins, otherwise min(total transit VCs, 4 * routers).
    const NetworkConfig &cfg = net_.config();
    if (cfg.maxProbeHops > 0)
        return cfg.maxProbeHops;
    const Topology &topo = net_.topo();
    int vcs = 0;
    for (RouterId r = 0; r < topo.numRouters(); ++r) {
        const int nicPorts = static_cast<int>(topo.nodesAt(r).size());
        vcs += (topo.radix(r) - nicPorts) * cfg.totalVcs();
    }
    return std::min(vcs, 4 * topo.numRouters());
}

bool
CdgAnalyzer::verifyWitness(const std::vector<int> &nodes) const
{
    // Independent machine check: for every edge of the cycle, re-run
    // the routing function from the state that generated the edge and
    // confirm it still demands the next channel while holding this one.
    const RoutingAlgorithm &algo = net_.routing();
    std::vector<RouteHop> hops;
    const std::uint64_t n = static_cast<std::uint64_t>(cdg_.numNodes());
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        const int from = nodes[i];
        const int to = nodes[(i + 1) % nodes.size()];
        const auto it = cdg_.edgeWitness.find(
            static_cast<std::uint64_t>(from) * n +
            static_cast<std::uint64_t>(to));
        if (it == cdg_.edgeWitness.end())
            return false;
        const RouteState &s = it->second;
        // The holder of `from` must sit at that channel's downstream
        // router.
        if (net_.topo().links()[cdg_.linkOf(from)].dst != s.router)
            return false;
        algo.enumerateHops(s, hops);
        bool reproduced = false;
        for (const RouteHop &h : hops) {
            const int link = net_.linkIndexOf(s.router, h.outport);
            if (link >= 0 && cdg_.nodeOf(link, h.vc) == to) {
                reproduced = true;
                break;
            }
        }
        if (!reproduced)
            return false;
    }
    return true;
}

bool
CdgAnalyzer::staticBubbleLayerAcyclic() const
{
    // Recovery packets drain on the reserved VC along west-first
    // routes (Router::routeVc); the layer is safe iff that route
    // function is cycle-free on this topology's link graph.
    const Topology &topo = net_.topo();
    if (!topo.mesh)
        return false;
    const MeshInfo &m = *topo.mesh;
    const int numLinks = static_cast<int>(topo.links().size());
    Digraph layer(numLinks);
    std::set<std::pair<int, int>> seen;
    for (RouterId r = 0; r < topo.numRouters(); ++r) {
        for (RouterId d = 0; d < topo.numRouters(); ++d) {
            if (r == d)
                continue;
            int prev = -1;
            RouterId cur = r;
            while (cur != d) {
                const PortId p = westFirstNextPort(m, cur, d);
                const int link = net_.linkIndexOf(cur, p);
                if (link < 0)
                    return false; // route walks off the fabric
                if (prev >= 0 && seen.emplace(prev, link).second)
                    layer.addEdge(prev, link);
                prev = link;
                cur = topo.links()[link].dst;
            }
        }
    }
    return layer.acyclic();
}

AnalysisReport
CdgAnalyzer::analyze(VnetId vnet, std::uint64_t max_states)
{
    const RoutingAlgorithm &algo = net_.routing();
    const NetworkConfig &cfg = net_.config();

    cdg_ = builder_.build(vnet, max_states);

    AnalysisReport rep;
    rep.topology = net_.topo().name;
    rep.routing = algo.name();
    rep.scheme = spin::toString(cfg.scheme);
    rep.vnet = vnet;
    rep.vcsPerVnet = cfg.vcsPerVnet;
    rep.declaredSelfFree = algo.selfDeadlockFree();
    rep.statesVisited = cdg_.statesVisited;
    rep.dependencies = cdg_.graph.numEdges();
    rep.channelsUsed = static_cast<std::uint64_t>(
        std::count(cdg_.nodeUsed.begin(), cdg_.nodeUsed.end(), 1));
    rep.escapeDeclared = cdg_.escapeDeclared;

    if (cdg_.truncated) {
        rep.verdict = Verdict::Inconclusive;
        rep.contractOk = false;
        rep.contractNote = "state enumeration truncated; raise the "
                           "state budget";
        return rep;
    }

    const auto sccs = cdg_.graph.nontrivialSccs();
    rep.cyclicSccs = static_cast<int>(sccs.size());
    for (const auto &scc : sccs)
        rep.largestScc = std::max(rep.largestScc,
                                  static_cast<int>(scc.size()));

    // Escape-layer condition (evaluated whenever a layer is declared,
    // reported even when a stronger verdict wins).
    if (cdg_.escapeDeclared) {
        Digraph sub(cdg_.numNodes());
        for (int a = 0; a < cdg_.numNodes(); ++a) {
            if (!cdg_.nodeEscape[a])
                continue;
            for (const int b : cdg_.graph.succs(a)) {
                if (cdg_.nodeEscape[b])
                    sub.addEdge(a, b);
            }
        }
        rep.escapeAcyclic = sub.acyclic();
        rep.escapeAlwaysReachable = cdg_.escapeAlwaysReachable;
        rep.escapeClosed = cdg_.escapeClosed;
    }

    if (cfg.scheme == DeadlockScheme::Spin)
        rep.probeBudget = probeBudget();

    // Witness cycles: the shortest cycle of every cyclic SCC, then
    // Johnson-enumerated ones, deduplicated up to rotation. Extracted
    // before the verdict so SPIN applicability can judge them.
    if (!sccs.empty()) {
        std::vector<std::vector<int>> cycles;
        for (const auto &scc : sccs) {
            if (cycles.size() >= kMaxWitnesses)
                break;
            auto c = cdg_.graph.shortestCycleIn(scc);
            if (!c.empty())
                cycles.push_back(std::move(c));
        }
        for (auto &c : cdg_.graph.elementaryCycles(kMaxWitnesses,
                                                   kMaxWitnessLen)) {
            if (cycles.size() >= kMaxWitnesses)
                break;
            cycles.push_back(std::move(c));
        }
        std::set<std::vector<int>> seen;
        const int p = algo.nonMinimal() ? 1 : 0;
        for (auto &nodes : cycles) {
            // Canonical rotation: start at the smallest node id.
            const auto minIt =
                std::min_element(nodes.begin(), nodes.end());
            std::rotate(nodes.begin(), minIt, nodes.end());
            if (!seen.insert(nodes).second)
                continue;
            WitnessCycle w;
            w.length = static_cast<int>(nodes.size());
            w.verified = verifyWitness(nodes);
            w.spinBound = w.length * p + (w.length - 1);
            w.spinRecoverable = cfg.scheme == DeadlockScheme::Spin &&
                                w.length <= rep.probeBudget;
            for (const int node : nodes)
                w.channels.push_back(builder_.channelOf(cdg_, node));
            w.nodes = std::move(nodes);
            rep.witnesses.push_back(std::move(w));
        }
        std::stable_sort(rep.witnesses.begin(), rep.witnesses.end(),
                         [](const WitnessCycle &a, const WitnessCycle &b) {
                             return a.length < b.length;
                         });
    }

    // Verdict cascade, strongest-to-weakest guarantee.
    if (sccs.empty()) {
        rep.verdict = Verdict::Acyclic;
    } else if (cdg_.escapeDeclared && rep.escapeAcyclic &&
               rep.escapeAlwaysReachable && rep.escapeClosed) {
        rep.verdict = Verdict::EscapeProtected;
    } else {
        std::vector<StaticChannel> channels;
        bool allProtected = true;
        for (const auto &scc : sccs) {
            channels.clear();
            for (const int node : scc)
                channels.push_back(builder_.channelOf(cdg_, node));
            if (!algo.sccProtectedByFlowControl(channels)) {
                allProtected = false;
                break;
            }
        }
        // SPIN applicability (paper Sec. III): every enumerated witness
        // must be a machine-verified spin loop a probe can traverse
        // within its hop budget. SCC size bounds the longest possible
        // elementary cycle, so when it fits the budget too, coverage is
        // exhaustive rather than witness-based (noted below otherwise).
        bool spinCovered = !rep.witnesses.empty();
        for (const WitnessCycle &w : rep.witnesses)
            spinCovered &= w.verified && w.spinRecoverable;
        if (allProtected) {
            rep.verdict = Verdict::FlowControlProtected;
        } else if (cfg.scheme == DeadlockScheme::Spin && spinCovered) {
            rep.verdict = Verdict::RecoverableSpin;
        } else if (cfg.scheme == DeadlockScheme::StaticBubble) {
            // Normal traffic must never touch the reserved VC, and the
            // reserved west-first drain layer must be acyclic.
            bool reservedClean = true;
            for (int node = 0; node < cdg_.numNodes(); ++node) {
                if (cdg_.nodeUsed[node] &&
                    cdg_.vcOf(node) % cfg.vcsPerVnet ==
                        cfg.vcsPerVnet - 1) {
                    reservedClean = false;
                    break;
                }
            }
            rep.verdict = reservedClean && staticBubbleLayerAcyclic()
                              ? Verdict::RecoverableStaticBubble
                              : Verdict::Deadlockable;
        } else {
            rep.verdict = Verdict::Deadlockable;
        }
    }

    // Contract cross-check against the routing algorithm's own claim.
    const bool actuallySelf = verdictSelfSufficient(rep.verdict);
    rep.contractOk = rep.declaredSelfFree == actuallySelf;
    if (rep.contractOk && rep.verdict == Verdict::RecoverableSpin &&
        rep.largestScc > rep.probeBudget) {
        rep.contractNote = "witness-based certification: the largest SCC (" +
                           std::to_string(rep.largestScc) +
                           " channels) exceeds the probe budget (" +
                           std::to_string(rep.probeBudget) +
                           "), so coverage rests on the enumerated "
                           "witness cycles";
    }
    if (!rep.contractOk) {
        rep.contractNote =
            rep.declaredSelfFree
                ? "routing declares selfDeadlockFree() but the CDG "
                  "admits an unprotected cycle"
                : "routing declares it needs recovery but the CDG "
                  "proves it deadlock-free on its own";
    }
    return rep;
}

std::string
CdgAnalyzer::toDot(const AnalysisReport &rep) const
{
    const Topology &topo = net_.topo();
    std::vector<char> inScc(cdg_.numNodes(), 0);
    for (const auto &scc : cdg_.graph.nontrivialSccs()) {
        for (const int v : scc)
            inScc[v] = 1;
    }
    std::set<std::pair<int, int>> witnessEdges;
    for (const WitnessCycle &w : rep.witnesses) {
        for (std::size_t i = 0; i < w.nodes.size(); ++i) {
            witnessEdges.emplace(w.nodes[i],
                                 w.nodes[(i + 1) % w.nodes.size()]);
        }
    }

    std::ostringstream os;
    os << "digraph cdg {\n"
       << "  label=\"" << rep.topology << " / " << rep.routing << " / "
       << rep.scheme << " -> " << analysis::toString(rep.verdict)
       << "\";\n"
       << "  node [fontsize=9];\n";
    for (int n = 0; n < cdg_.numNodes(); ++n) {
        if (!cdg_.nodeUsed[n])
            continue;
        const LinkSpec &l = topo.links()[cdg_.linkOf(n)];
        os << "  n" << n << " [label=\"" << l.src << "->" << l.dst
           << " p" << l.srcPort << " v" << cdg_.vcOf(n) << "\"";
        if (inScc[n])
            os << ", style=filled, fillcolor=\"#f6d0d0\"";
        if (cdg_.nodeEscape[n])
            os << ", shape=box, peripheries=2";
        os << "];\n";
    }
    for (int a = 0; a < cdg_.numNodes(); ++a) {
        for (const int b : cdg_.graph.succs(a)) {
            os << "  n" << a << " -> n" << b;
            if (witnessEdges.count({a, b}))
                os << " [color=red, penwidth=2.0]";
            os << ";\n";
        }
    }
    os << "}\n";
    return os.str();
}

} // namespace spin::analysis
