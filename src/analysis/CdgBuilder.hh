/**
 * @file
 * Extended channel-dependency-graph construction (Dally & Seitz
 * extended to per-VC channels, escape restrictions and misroute / VC
 * class state, after Verbeek & Schmaltz's observation that deadlock
 * conditions are decidable from the routing function alone).
 *
 * A CDG node is one per-VC channel (link, vc). The builder runs a
 * breadth-first reachability sweep over abstract packet states
 * (RoutingAlgorithm::RouteState) seeded from every source/destination
 * pair, asking the routing function at each state which channels the
 * packet may demand next (RoutingAlgorithm::enumerateHops). Every
 * (held channel -> demanded channel) pair becomes a dependency edge,
 * so the graph honors escape-VC restrictions, VC-class orderings and
 * reservation schemes exactly as the datapath enforces them -- the
 * enumeration and the simulator share one code path.
 */

#ifndef SPINNOC_ANALYSIS_CDGBUILDER_HH
#define SPINNOC_ANALYSIS_CDGBUILDER_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "analysis/Digraph.hh"
#include "common/Types.hh"
#include "routing/RoutingAlgorithm.hh"

namespace spin
{
class Network;
}

namespace spin::analysis
{

/** The built graph plus everything the analyzer needs to judge it. */
struct Cdg
{
    /** Dependency graph; node id = link index * vcStride + vc. */
    Digraph graph;
    int vcStride = 0;
    VnetId vnet = 0;

    /** Channel is reachable by some packet (others are dead nodes). */
    std::vector<char> nodeUsed;
    /** Channel belongs to the declared escape layer (may be empty). */
    std::vector<char> nodeEscape;

    /** Routing declared an escape layer (escapeVcs non-empty). */
    bool escapeDeclared = false;
    /** Every reachable blocked state had >= 1 hop into the escape
     *  layer (Duato: escape is always an option). */
    bool escapeAlwaysReachable = true;
    /** States already on escape only ever demand escape channels
     *  (the escape layer is closed under routing). */
    bool escapeClosed = true;

    /** One state that generated each edge, for independent re-checks;
     *  key = (uint64) from-node * numNodes + to-node. */
    std::unordered_map<std::uint64_t, RouteState> edgeWitness;

    std::uint64_t statesVisited = 0;
    /** Non-zero when the state cap was hit: the graph is incomplete
     *  and no sound verdict can be given. */
    bool truncated = false;

    int numNodes() const { return graph.numNodes(); }
    int nodeOf(int link, VcId vc) const { return link * vcStride + vc; }
    int linkOf(int node) const { return node / vcStride; }
    VcId vcOf(int node) const { return node % vcStride; }
};

/** See file comment. */
class CdgBuilder
{
  public:
    /** @param net assembled network (topology + routing attached). */
    explicit CdgBuilder(const Network &net) : net_(net) {}

    /**
     * Build the CDG for @p vnet. Virtual networks never share VCs, so
     * one vnet's graph decides deadlock freedom for all of them.
     *
     * @param max_states abort threshold for the reachability sweep
     *        (sets Cdg::truncated instead of looping forever on a
     *        mis-behaving routing function)
     */
    Cdg build(VnetId vnet = 0, std::uint64_t max_states = 1ull << 24) const;

    /** Channel metadata for a node id of a graph built over this net. */
    StaticChannel channelOf(const Cdg &cdg, int node) const;

  private:
    const Network &net_;
};

} // namespace spin::analysis

#endif // SPINNOC_ANALYSIS_CDGBUILDER_HH
