#include "analysis/Digraph.hh"

#include <algorithm>
#include <cstdint>

namespace spin::analysis
{

Digraph::Digraph(int num_nodes) : succs_(num_nodes)
{
}

void
Digraph::addEdge(int a, int b)
{
    succs_[a].push_back(b);
    ++numEdges_;
}

std::vector<std::vector<int>>
Digraph::nontrivialSccs() const
{
    const int n = numNodes();
    constexpr int kUnvisited = -1;
    std::vector<int> index(n, kUnvisited);
    std::vector<int> lowlink(n, 0);
    std::vector<char> onStack(n, 0);
    std::vector<int> stack;
    std::vector<std::vector<int>> sccs;
    int nextIndex = 0;

    // Explicit DFS frame: node plus the next successor position.
    struct Frame
    {
        int node;
        std::size_t succPos;
    };
    std::vector<Frame> frames;

    for (int root = 0; root < n; ++root) {
        if (index[root] != kUnvisited)
            continue;
        frames.push_back({root, 0});
        while (!frames.empty()) {
            Frame &f = frames.back();
            const int v = f.node;
            if (f.succPos == 0) {
                index[v] = lowlink[v] = nextIndex++;
                stack.push_back(v);
                onStack[v] = 1;
            }
            bool descended = false;
            while (f.succPos < succs_[v].size()) {
                const int w = succs_[v][f.succPos++];
                if (index[w] == kUnvisited) {
                    frames.push_back({w, 0});
                    descended = true;
                    break;
                }
                if (onStack[w])
                    lowlink[v] = std::min(lowlink[v], index[w]);
            }
            if (descended)
                continue;
            if (lowlink[v] == index[v]) {
                std::vector<int> scc;
                int w;
                do {
                    w = stack.back();
                    stack.pop_back();
                    onStack[w] = 0;
                    scc.push_back(w);
                } while (w != v);
                bool cyclic = scc.size() > 1;
                if (!cyclic) {
                    const auto &sv = succs_[v];
                    cyclic = std::find(sv.begin(), sv.end(), v) != sv.end();
                }
                if (cyclic)
                    sccs.push_back(std::move(scc));
            }
            frames.pop_back();
            if (!frames.empty()) {
                Frame &parent = frames.back();
                lowlink[parent.node] =
                    std::min(lowlink[parent.node], lowlink[v]);
            }
        }
    }
    return sccs;
}

namespace
{

/** State of one Johnson enumeration (one start vertex s at a time). */
struct JohnsonCtx
{
    const Digraph &g;
    std::size_t maxCycles;
    std::size_t maxLen;
    int start = 0;
    std::vector<char> inScc;    //!< node is in the current subgraph
    std::vector<char> blocked;
    std::vector<char> onPath;
    std::vector<std::vector<int>> blockList;
    std::vector<int> path;
    std::vector<std::vector<int>> cycles;

    explicit JohnsonCtx(const Digraph &graph, std::size_t max_cycles,
                        std::size_t max_len)
        : g(graph), maxCycles(max_cycles), maxLen(max_len),
          inScc(graph.numNodes(), 0), blocked(graph.numNodes(), 0),
          onPath(graph.numNodes(), 0), blockList(graph.numNodes())
    {
    }

    void unblock(int v)
    {
        blocked[v] = 0;
        for (const int w : blockList[v]) {
            if (blocked[w])
                unblock(w);
        }
        blockList[v].clear();
    }

    bool circuit(int v)
    {
        bool foundCycle = false;
        path.push_back(v);
        blocked[v] = 1;
        onPath[v] = 1;
        for (const int w : g.succs(v)) {
            if (!inScc[w] || w < start)
                continue;
            if (cycles.size() >= maxCycles)
                break;
            if (w == start) {
                cycles.push_back(path);
                foundCycle = true;
            } else if (!blocked[w] && !onPath[w] && path.size() < maxLen) {
                // !onPath guards elementarity directly: the maxLen
                // cutoff makes circuit() fail on nodes that do lie on
                // a cycle, which poisons the block lists -- a later
                // unblock cascade can then clear a node that is still
                // on the path, and Johnson's blocked[] invariant no
                // longer implies path-disjointness on its own.
                if (circuit(w))
                    foundCycle = true;
            }
        }
        onPath[v] = 0;
        if (foundCycle) {
            unblock(v);
        } else {
            for (const int w : g.succs(v)) {
                if (!inScc[w] || w < start)
                    continue;
                auto &bl = blockList[w];
                if (std::find(bl.begin(), bl.end(), v) == bl.end())
                    bl.push_back(v);
            }
        }
        path.pop_back();
        return foundCycle;
    }
};

} // namespace

std::vector<std::vector<int>>
Digraph::elementaryCycles(std::size_t max_cycles, std::size_t max_len) const
{
    JohnsonCtx ctx(*this, max_cycles, max_len);
    for (const auto &scc : nontrivialSccs()) {
        if (ctx.cycles.size() >= max_cycles)
            break;
        for (const int v : scc)
            ctx.inScc[v] = 1;
        // Johnson's vertex order: start from the smallest node of the
        // SCC upward; nodes below the start are excluded per round.
        std::vector<int> order(scc);
        std::sort(order.begin(), order.end());
        for (const int s : order) {
            if (ctx.cycles.size() >= max_cycles)
                break;
            ctx.start = s;
            for (const int v : scc) {
                ctx.blocked[v] = 0;
                ctx.blockList[v].clear();
            }
            ctx.circuit(s);
        }
        for (const int v : scc)
            ctx.inScc[v] = 0;
    }
    // Every cycle starts at the smallest node of its round, so
    // duplicates (possible when the maxLen cutoff poisons the block
    // lists and a subtree is re-explored) are bitwise-equal vectors.
    std::sort(ctx.cycles.begin(), ctx.cycles.end());
    ctx.cycles.erase(std::unique(ctx.cycles.begin(), ctx.cycles.end()),
                     ctx.cycles.end());
    return ctx.cycles;
}

std::vector<int>
Digraph::shortestCycleIn(const std::vector<int> &scc) const
{
    std::vector<char> member(numNodes(), 0);
    for (const int v : scc)
        member[v] = 1;

    std::vector<int> best;
    std::vector<int> parent(numNodes());
    std::vector<int> dist(numNodes());
    std::vector<int> queue;
    for (const int s : scc) {
        // BFS from s within the SCC; first edge back into s closes a
        // shortest cycle through s.
        std::fill(parent.begin(), parent.end(), -1);
        std::fill(dist.begin(), dist.end(), -1);
        queue.clear();
        queue.push_back(s);
        dist[s] = 0;
        int closer = -1;
        for (std::size_t head = 0; head < queue.size() && closer < 0;
             ++head) {
            const int v = queue[head];
            if (!best.empty() &&
                dist[v] + 1 >= static_cast<int>(best.size())) {
                break; // cannot beat the current best from here
            }
            for (const int w : succs_[v]) {
                if (w == s) {
                    closer = v;
                    break;
                }
                if (member[w] && dist[w] < 0) {
                    dist[w] = dist[v] + 1;
                    parent[w] = v;
                    queue.push_back(w);
                }
            }
        }
        if (closer < 0)
            continue;
        // The parent chain from closer terminates at s, so the
        // reversed walk is already the full cycle s ... closer.
        std::vector<int> cycle;
        for (int v = closer; v != -1; v = parent[v])
            cycle.push_back(v);
        std::reverse(cycle.begin(), cycle.end());
        if (best.empty() || cycle.size() < best.size())
            best = std::move(cycle);
    }
    return best;
}

} // namespace spin::analysis
