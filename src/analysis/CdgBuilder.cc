#include "analysis/CdgBuilder.hh"

#include <deque>
#include <unordered_set>

#include "common/Logging.hh"
#include "network/Network.hh"

namespace spin::analysis
{

namespace
{

/** Pack a (channel, state) pair into one 64-bit visited-set key. */
struct KeyPacker
{
    // Field widths; asserted against the instance in the builder.
    static constexpr int kLinkBits = 20;
    static constexpr int kVcBits = 6;
    static constexpr int kRouterBits = 13;
    static constexpr int kGhBits = 4;

    static std::uint64_t
    pack(int link, VcId vc, const RouteState &s)
    {
        std::uint64_t k = static_cast<std::uint64_t>(link);
        k = (k << kVcBits) | static_cast<std::uint64_t>(vc);
        k = (k << kRouterBits) | static_cast<std::uint64_t>(s.target);
        k = (k << kRouterBits) | static_cast<std::uint64_t>(s.dest);
        k = (k << kGhBits) | static_cast<std::uint64_t>(s.globalHops);
        k = (k << 1) | static_cast<std::uint64_t>(s.onEscape);
        k = (k << 1) | static_cast<std::uint64_t>(s.misrouting);
        return k;
    }
};

struct Pending
{
    int node;
    RouteState state;
};

} // namespace

Cdg
CdgBuilder::build(VnetId vnet, std::uint64_t max_states) const
{
    const Topology &topo = net_.topo();
    const RoutingAlgorithm &algo = net_.routing();
    const int nr = topo.numRouters();
    const int numLinks = static_cast<int>(topo.links().size());

    SPIN_ASSERT(numLinks < (1 << KeyPacker::kLinkBits),
                "topology too large for CDG key packing");
    SPIN_ASSERT(nr < (1 << KeyPacker::kRouterBits),
                "topology too large for CDG key packing");
    SPIN_ASSERT(net_.config().totalVcs() < (1 << KeyPacker::kVcBits),
                "VC count too large for CDG key packing");

    Cdg cdg;
    cdg.vcStride = net_.config().totalVcs();
    cdg.vnet = vnet;
    const int numNodes = numLinks * cdg.vcStride;
    cdg.graph = Digraph(numNodes);
    cdg.nodeUsed.assign(numNodes, 0);
    cdg.nodeEscape.assign(numNodes, 0);

    std::vector<VcId> escape;
    algo.escapeVcs(vnet, escape);
    cdg.escapeDeclared = !escape.empty();
    std::vector<char> escapeVc(cdg.vcStride, 0);
    for (const VcId v : escape)
        escapeVc[v] = 1;
    for (int l = 0; l < numLinks; ++l) {
        for (VcId v = 0; v < cdg.vcStride; ++v)
            cdg.nodeEscape[cdg.nodeOf(l, v)] = escapeVc[v];
    }

    std::unordered_set<std::uint64_t> visited;
    std::unordered_set<std::uint64_t> edges;
    std::deque<Pending> queue;
    std::vector<RouteState> inits;
    std::vector<RouteHop> hops;

    const auto nodeOfHop = [&](const RouteState &s, const RouteHop &h) {
        const int link = net_.linkIndexOf(s.router, h.outport);
        SPIN_ASSERT(link >= 0, "hop over unwired port ", h.outport,
                    " of router ", s.router);
        return cdg.nodeOf(link, h.vc);
    };

    const auto enqueue = [&](int node, const RouteState &s) {
        if (visited.insert(KeyPacker::pack(cdg.linkOf(node),
                                           cdg.vcOf(node), s))
                .second) {
            queue.push_back({node, s});
        }
    };

    // Seed: every (src, dest) pair's initial states. The injection
    // queue itself holds no network channel, so seeding adds nodes but
    // no edges.
    for (RouterId src = 0; src < nr && !cdg.truncated; ++src) {
        for (RouterId dest = 0; dest < nr; ++dest) {
            if (src == dest)
                continue;
            if (topo.partial() && topo.distance(src, dest) < 0)
                continue; // unreachable on a degraded topology
            algo.initialStates(src, dest, vnet, inits);
            for (const RouteState &s : inits) {
                algo.enumerateHops(s, hops);
                for (const RouteHop &h : hops) {
                    const int node = nodeOfHop(s, h);
                    cdg.nodeUsed[node] = 1;
                    enqueue(node, h.next);
                }
            }
            if (visited.size() > max_states) {
                cdg.truncated = true;
                break;
            }
        }
    }

    // Reachability sweep: each visited (channel, state) pair asks the
    // routing function what it may demand next.
    while (!queue.empty() && !cdg.truncated) {
        const Pending cur = queue.front();
        queue.pop_front();
        ++cdg.statesVisited;

        algo.enumerateHops(cur.state, hops);
        if (cdg.escapeDeclared && !cur.state.terminal()) {
            bool hasEscape = false;
            bool allEscape = true;
            for (const RouteHop &h : hops) {
                if (escapeVc[h.vc])
                    hasEscape = true;
                else
                    allEscape = false;
            }
            if (!hasEscape)
                cdg.escapeAlwaysReachable = false;
            if (cur.state.onEscape && !allEscape)
                cdg.escapeClosed = false;
        }
        for (const RouteHop &h : hops) {
            const int node = nodeOfHop(cur.state, h);
            cdg.nodeUsed[node] = 1;
            const std::uint64_t ekey =
                static_cast<std::uint64_t>(cur.node) *
                    static_cast<std::uint64_t>(numNodes) +
                static_cast<std::uint64_t>(node);
            if (edges.insert(ekey).second) {
                cdg.graph.addEdge(cur.node, node);
                cdg.edgeWitness.emplace(ekey, cur.state);
            }
            enqueue(node, h.next);
        }
        if (visited.size() > max_states)
            cdg.truncated = true;
    }
    return cdg;
}

StaticChannel
CdgBuilder::channelOf(const Cdg &cdg, int node) const
{
    const LinkSpec &l = net_.topo().links()[cdg.linkOf(node)];
    StaticChannel c;
    c.src = l.src;
    c.srcPort = l.srcPort;
    c.dst = l.dst;
    c.dstPort = l.dstPort;
    c.vc = cdg.vcOf(node);
    return c;
}

} // namespace spin::analysis
