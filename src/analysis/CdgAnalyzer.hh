/**
 * @file
 * Static deadlock-freedom verdicts over a built channel dependency
 * graph: Tarjan acyclicity, the Duato escape-subgraph condition,
 * per-SCC flow-control (bubble) protection, recovery-scheme
 * applicability (SPIN probe budget + spin bound, Static Bubble
 * reserved-layer acyclicity), and concrete machine-checked witness
 * cycles for every cyclic verdict. This is the library behind the
 * `spin_lint` CLI; it statically reproduces the paper's Table 1
 * classification without simulating a single cycle.
 */

#ifndef SPINNOC_ANALYSIS_CDGANALYZER_HH
#define SPINNOC_ANALYSIS_CDGANALYZER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/CdgBuilder.hh"
#include "common/Types.hh"
#include "obs/Json.hh"

namespace spin
{
class Network;
}

namespace spin::analysis
{

/** Why (or whether) a configuration is deadlock-free. */
enum class Verdict : std::uint8_t
{
    /** CDG acyclic: deadlock-free by routing restriction alone. */
    Acyclic,
    /** CDG cyclic, but the declared escape layer is acyclic, always
     *  reachable, and closed (Duato's sufficient condition). */
    EscapeProtected,
    /** CDG cyclic, but every cyclic SCC is neutralized by the routing
     *  algorithm's flow control (bubble condition). */
    FlowControlProtected,
    /** CDG cyclic; SPIN recovery covers every possible loop. */
    RecoverableSpin,
    /** CDG cyclic; the Static Bubble reserved layer drains it. */
    RecoverableStaticBubble,
    /** CDG cyclic and nothing protects it: the config can deadlock. */
    Deadlockable,
    /** State enumeration truncated: no sound verdict. */
    Inconclusive,
};

std::string toString(Verdict v);
/** Paper Table 1 theory-class label for @p v. */
std::string theoryClass(Verdict v);
/** True when the verdict certifies the configuration deadlock-free. */
bool verdictDeadlockFree(Verdict v);
/** True when freedom needs no recovery scheme (routing/flow control). */
bool verdictSelfSufficient(Verdict v);

/** One concrete dependency cycle, in edge order. */
struct WitnessCycle
{
    std::vector<int> nodes;             //!< CDG node ids
    std::vector<StaticChannel> channels; //!< same order as nodes
    /** Re-checked edge-by-edge against the routing function. */
    bool verified = false;
    /** Loop length m = packets in the canonical deadlock. */
    int length = 0;
    /** True when a SPIN probe can traverse the loop (m <= probe cap). */
    bool spinRecoverable = false;
    /** Paper Sec. III spin bound k = m*p + (m-1). */
    int spinBound = 0;

    obs::JsonValue toJson() const;
};

/** Full result of one static analysis run. */
struct AnalysisReport
{
    std::string topology;
    std::string routing;
    std::string scheme;
    VnetId vnet = 0;
    int vcsPerVnet = 0;

    Verdict verdict = Verdict::Inconclusive;

    /// @name Contract cross-check
    /// @{
    bool declaredSelfFree = false;
    /** Declared selfDeadlockFree() matches the static verdict. */
    bool contractOk = false;
    std::string contractNote;
    /// @}

    /// @name Graph shape
    /// @{
    std::uint64_t channelsUsed = 0;
    std::uint64_t dependencies = 0;
    std::uint64_t statesVisited = 0;
    int cyclicSccs = 0;
    int largestScc = 0;
    /// @}

    /// @name Escape condition (when a layer is declared)
    /// @{
    bool escapeDeclared = false;
    bool escapeAcyclic = false;
    bool escapeAlwaysReachable = false;
    bool escapeClosed = false;
    /// @}

    /** SPIN probe-hop budget in effect (0 when scheme != spin). */
    int probeBudget = 0;

    /** One shortest witness per cyclic SCC plus Johnson-enumerated
     *  cycles, deduplicated; empty when acyclic. */
    std::vector<WitnessCycle> witnesses;

    obs::JsonValue toJson() const;
    /** One human-readable verdict line. */
    std::string summary() const;
};

/** See file comment. */
class CdgAnalyzer
{
  public:
    explicit CdgAnalyzer(const Network &net);

    /** Build + judge the CDG of @p vnet. */
    AnalysisReport analyze(VnetId vnet = 0,
                           std::uint64_t max_states = 1ull << 24);

    /** The graph behind the last analyze() call (DOT export input). */
    const Cdg &cdg() const { return cdg_; }

    /**
     * Graphviz DOT of the used CDG subgraph: escape channels dashed,
     * cyclic-SCC members filled, witness edges bold red.
     */
    std::string toDot(const AnalysisReport &rep) const;

    /** Max cycles Johnson enumeration reports per analyze() call. */
    static constexpr std::size_t kMaxWitnesses = 16;
    /** Cycle length cap for Johnson enumeration. */
    static constexpr std::size_t kMaxWitnessLen = 64;

  private:
    const Network &net_;
    CdgBuilder builder_;
    Cdg cdg_;

    /** Re-execute the routing function along @p nodes; true when every
     *  edge of the cycle is reproduced. */
    bool verifyWitness(const std::vector<int> &nodes) const;
    /** Static Bubble reserved west-first layer is acyclic. */
    bool staticBubbleLayerAcyclic() const;
    int probeBudget() const;
};

} // namespace spin::analysis

#endif // SPINNOC_ANALYSIS_CDGANALYZER_HH
