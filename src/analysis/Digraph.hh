/**
 * @file
 * Generic directed-graph algorithms for the static channel-dependency
 * analysis: iterative Tarjan strongly-connected components, bounded
 * Johnson elementary-cycle enumeration, and per-SCC shortest-cycle
 * search (the cheapest concrete witness of cyclicity). Nodes are dense
 * ints; the CDG layers meaning on top (analysis/CdgBuilder.hh).
 */

#ifndef SPINNOC_ANALYSIS_DIGRAPH_HH
#define SPINNOC_ANALYSIS_DIGRAPH_HH

#include <cstddef>
#include <vector>

namespace spin::analysis
{

/** See file comment. */
class Digraph
{
  public:
    explicit Digraph(int num_nodes = 0);

    int numNodes() const { return static_cast<int>(succs_.size()); }
    std::size_t numEdges() const { return numEdges_; }

    /** Add edge a -> b. Duplicates are the caller's concern. */
    void addEdge(int a, int b);
    const std::vector<int> &succs(int n) const { return succs_[n]; }

    /**
     * Strongly connected components that can carry a cycle: size > 1,
     * or a single node with a self-loop. Tarjan, iterative (CDGs of
     * large networks overflow a recursive stack).
     */
    std::vector<std::vector<int>> nontrivialSccs() const;

    bool acyclic() const { return nontrivialSccs().empty(); }

    /**
     * Elementary cycles in Johnson's vertex order, capped at
     * @p max_cycles results and @p max_len nodes per cycle (paths
     * longer than the cap are pruned, so enumeration is exhaustive
     * only up to that length). Each cycle lists its nodes in edge
     * order, first node smallest.
     */
    std::vector<std::vector<int>>
    elementaryCycles(std::size_t max_cycles, std::size_t max_len) const;

    /**
     * A shortest cycle through any node of @p scc (nodes of one SCC of
     * this graph), found by BFS from each member. Empty when the SCC
     * carries no cycle.
     */
    std::vector<int> shortestCycleIn(const std::vector<int> &scc) const;

  private:
    std::vector<std::vector<int>> succs_;
    std::size_t numEdges_ = 0;
};

} // namespace spin::analysis

#endif // SPINNOC_ANALYSIS_DIGRAPH_HH
