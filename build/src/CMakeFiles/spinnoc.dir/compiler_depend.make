# Empty compiler generated dependencies file for spinnoc.
# This may be replaced when dependencies are built.
