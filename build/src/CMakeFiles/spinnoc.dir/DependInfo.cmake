
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/Config.cc" "src/CMakeFiles/spinnoc.dir/common/Config.cc.o" "gcc" "src/CMakeFiles/spinnoc.dir/common/Config.cc.o.d"
  "/root/repo/src/common/Logging.cc" "src/CMakeFiles/spinnoc.dir/common/Logging.cc.o" "gcc" "src/CMakeFiles/spinnoc.dir/common/Logging.cc.o.d"
  "/root/repo/src/common/Packet.cc" "src/CMakeFiles/spinnoc.dir/common/Packet.cc.o" "gcc" "src/CMakeFiles/spinnoc.dir/common/Packet.cc.o.d"
  "/root/repo/src/common/Random.cc" "src/CMakeFiles/spinnoc.dir/common/Random.cc.o" "gcc" "src/CMakeFiles/spinnoc.dir/common/Random.cc.o.d"
  "/root/repo/src/core/Favors.cc" "src/CMakeFiles/spinnoc.dir/core/Favors.cc.o" "gcc" "src/CMakeFiles/spinnoc.dir/core/Favors.cc.o.d"
  "/root/repo/src/core/LoopBuffer.cc" "src/CMakeFiles/spinnoc.dir/core/LoopBuffer.cc.o" "gcc" "src/CMakeFiles/spinnoc.dir/core/LoopBuffer.cc.o.d"
  "/root/repo/src/core/MoveManager.cc" "src/CMakeFiles/spinnoc.dir/core/MoveManager.cc.o" "gcc" "src/CMakeFiles/spinnoc.dir/core/MoveManager.cc.o.d"
  "/root/repo/src/core/ProbeManager.cc" "src/CMakeFiles/spinnoc.dir/core/ProbeManager.cc.o" "gcc" "src/CMakeFiles/spinnoc.dir/core/ProbeManager.cc.o.d"
  "/root/repo/src/core/RotatingPriority.cc" "src/CMakeFiles/spinnoc.dir/core/RotatingPriority.cc.o" "gcc" "src/CMakeFiles/spinnoc.dir/core/RotatingPriority.cc.o.d"
  "/root/repo/src/core/SpecialMsg.cc" "src/CMakeFiles/spinnoc.dir/core/SpecialMsg.cc.o" "gcc" "src/CMakeFiles/spinnoc.dir/core/SpecialMsg.cc.o.d"
  "/root/repo/src/core/SpinFsm.cc" "src/CMakeFiles/spinnoc.dir/core/SpinFsm.cc.o" "gcc" "src/CMakeFiles/spinnoc.dir/core/SpinFsm.cc.o.d"
  "/root/repo/src/core/SpinManager.cc" "src/CMakeFiles/spinnoc.dir/core/SpinManager.cc.o" "gcc" "src/CMakeFiles/spinnoc.dir/core/SpinManager.cc.o.d"
  "/root/repo/src/core/SpinUnit.cc" "src/CMakeFiles/spinnoc.dir/core/SpinUnit.cc.o" "gcc" "src/CMakeFiles/spinnoc.dir/core/SpinUnit.cc.o.d"
  "/root/repo/src/deadlock/Invariants.cc" "src/CMakeFiles/spinnoc.dir/deadlock/Invariants.cc.o" "gcc" "src/CMakeFiles/spinnoc.dir/deadlock/Invariants.cc.o.d"
  "/root/repo/src/deadlock/OracleDetector.cc" "src/CMakeFiles/spinnoc.dir/deadlock/OracleDetector.cc.o" "gcc" "src/CMakeFiles/spinnoc.dir/deadlock/OracleDetector.cc.o.d"
  "/root/repo/src/deadlock/StaticBubble.cc" "src/CMakeFiles/spinnoc.dir/deadlock/StaticBubble.cc.o" "gcc" "src/CMakeFiles/spinnoc.dir/deadlock/StaticBubble.cc.o.d"
  "/root/repo/src/network/Link.cc" "src/CMakeFiles/spinnoc.dir/network/Link.cc.o" "gcc" "src/CMakeFiles/spinnoc.dir/network/Link.cc.o.d"
  "/root/repo/src/network/Network.cc" "src/CMakeFiles/spinnoc.dir/network/Network.cc.o" "gcc" "src/CMakeFiles/spinnoc.dir/network/Network.cc.o.d"
  "/root/repo/src/network/NetworkBuilder.cc" "src/CMakeFiles/spinnoc.dir/network/NetworkBuilder.cc.o" "gcc" "src/CMakeFiles/spinnoc.dir/network/NetworkBuilder.cc.o.d"
  "/root/repo/src/network/Nic.cc" "src/CMakeFiles/spinnoc.dir/network/Nic.cc.o" "gcc" "src/CMakeFiles/spinnoc.dir/network/Nic.cc.o.d"
  "/root/repo/src/power/AreaPowerModel.cc" "src/CMakeFiles/spinnoc.dir/power/AreaPowerModel.cc.o" "gcc" "src/CMakeFiles/spinnoc.dir/power/AreaPowerModel.cc.o.d"
  "/root/repo/src/router/InputUnit.cc" "src/CMakeFiles/spinnoc.dir/router/InputUnit.cc.o" "gcc" "src/CMakeFiles/spinnoc.dir/router/InputUnit.cc.o.d"
  "/root/repo/src/router/OutputUnit.cc" "src/CMakeFiles/spinnoc.dir/router/OutputUnit.cc.o" "gcc" "src/CMakeFiles/spinnoc.dir/router/OutputUnit.cc.o.d"
  "/root/repo/src/router/Router.cc" "src/CMakeFiles/spinnoc.dir/router/Router.cc.o" "gcc" "src/CMakeFiles/spinnoc.dir/router/Router.cc.o.d"
  "/root/repo/src/router/VirtualChannel.cc" "src/CMakeFiles/spinnoc.dir/router/VirtualChannel.cc.o" "gcc" "src/CMakeFiles/spinnoc.dir/router/VirtualChannel.cc.o.d"
  "/root/repo/src/routing/DimensionOrder.cc" "src/CMakeFiles/spinnoc.dir/routing/DimensionOrder.cc.o" "gcc" "src/CMakeFiles/spinnoc.dir/routing/DimensionOrder.cc.o.d"
  "/root/repo/src/routing/EscapeVc.cc" "src/CMakeFiles/spinnoc.dir/routing/EscapeVc.cc.o" "gcc" "src/CMakeFiles/spinnoc.dir/routing/EscapeVc.cc.o.d"
  "/root/repo/src/routing/MinimalAdaptive.cc" "src/CMakeFiles/spinnoc.dir/routing/MinimalAdaptive.cc.o" "gcc" "src/CMakeFiles/spinnoc.dir/routing/MinimalAdaptive.cc.o.d"
  "/root/repo/src/routing/RoutingAlgorithm.cc" "src/CMakeFiles/spinnoc.dir/routing/RoutingAlgorithm.cc.o" "gcc" "src/CMakeFiles/spinnoc.dir/routing/RoutingAlgorithm.cc.o.d"
  "/root/repo/src/routing/TorusBubble.cc" "src/CMakeFiles/spinnoc.dir/routing/TorusBubble.cc.o" "gcc" "src/CMakeFiles/spinnoc.dir/routing/TorusBubble.cc.o.d"
  "/root/repo/src/routing/Ugal.cc" "src/CMakeFiles/spinnoc.dir/routing/Ugal.cc.o" "gcc" "src/CMakeFiles/spinnoc.dir/routing/Ugal.cc.o.d"
  "/root/repo/src/routing/WestFirst.cc" "src/CMakeFiles/spinnoc.dir/routing/WestFirst.cc.o" "gcc" "src/CMakeFiles/spinnoc.dir/routing/WestFirst.cc.o.d"
  "/root/repo/src/sim/Clock.cc" "src/CMakeFiles/spinnoc.dir/sim/Clock.cc.o" "gcc" "src/CMakeFiles/spinnoc.dir/sim/Clock.cc.o.d"
  "/root/repo/src/stats/Stats.cc" "src/CMakeFiles/spinnoc.dir/stats/Stats.cc.o" "gcc" "src/CMakeFiles/spinnoc.dir/stats/Stats.cc.o.d"
  "/root/repo/src/topology/Dragonfly.cc" "src/CMakeFiles/spinnoc.dir/topology/Dragonfly.cc.o" "gcc" "src/CMakeFiles/spinnoc.dir/topology/Dragonfly.cc.o.d"
  "/root/repo/src/topology/Irregular.cc" "src/CMakeFiles/spinnoc.dir/topology/Irregular.cc.o" "gcc" "src/CMakeFiles/spinnoc.dir/topology/Irregular.cc.o.d"
  "/root/repo/src/topology/Mesh.cc" "src/CMakeFiles/spinnoc.dir/topology/Mesh.cc.o" "gcc" "src/CMakeFiles/spinnoc.dir/topology/Mesh.cc.o.d"
  "/root/repo/src/topology/Ring.cc" "src/CMakeFiles/spinnoc.dir/topology/Ring.cc.o" "gcc" "src/CMakeFiles/spinnoc.dir/topology/Ring.cc.o.d"
  "/root/repo/src/topology/Topology.cc" "src/CMakeFiles/spinnoc.dir/topology/Topology.cc.o" "gcc" "src/CMakeFiles/spinnoc.dir/topology/Topology.cc.o.d"
  "/root/repo/src/topology/TopologyIo.cc" "src/CMakeFiles/spinnoc.dir/topology/TopologyIo.cc.o" "gcc" "src/CMakeFiles/spinnoc.dir/topology/TopologyIo.cc.o.d"
  "/root/repo/src/topology/Torus.cc" "src/CMakeFiles/spinnoc.dir/topology/Torus.cc.o" "gcc" "src/CMakeFiles/spinnoc.dir/topology/Torus.cc.o.d"
  "/root/repo/src/traffic/CoherenceTraffic.cc" "src/CMakeFiles/spinnoc.dir/traffic/CoherenceTraffic.cc.o" "gcc" "src/CMakeFiles/spinnoc.dir/traffic/CoherenceTraffic.cc.o.d"
  "/root/repo/src/traffic/SyntheticInjector.cc" "src/CMakeFiles/spinnoc.dir/traffic/SyntheticInjector.cc.o" "gcc" "src/CMakeFiles/spinnoc.dir/traffic/SyntheticInjector.cc.o.d"
  "/root/repo/src/traffic/TraceTraffic.cc" "src/CMakeFiles/spinnoc.dir/traffic/TraceTraffic.cc.o" "gcc" "src/CMakeFiles/spinnoc.dir/traffic/TraceTraffic.cc.o.d"
  "/root/repo/src/traffic/TrafficPattern.cc" "src/CMakeFiles/spinnoc.dir/traffic/TrafficPattern.cc.o" "gcc" "src/CMakeFiles/spinnoc.dir/traffic/TrafficPattern.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
