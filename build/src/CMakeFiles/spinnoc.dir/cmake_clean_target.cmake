file(REMOVE_RECURSE
  "libspinnoc.a"
)
