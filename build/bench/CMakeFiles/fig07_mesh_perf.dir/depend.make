# Empty dependencies file for fig07_mesh_perf.
# This may be replaced when dependencies are built.
