file(REMOVE_RECURSE
  "CMakeFiles/fig07_mesh_perf.dir/fig07_mesh_perf.cc.o"
  "CMakeFiles/fig07_mesh_perf.dir/fig07_mesh_perf.cc.o.d"
  "fig07_mesh_perf"
  "fig07_mesh_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_mesh_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
