file(REMOVE_RECURSE
  "CMakeFiles/ablation_spin_params.dir/ablation_spin_params.cc.o"
  "CMakeFiles/ablation_spin_params.dir/ablation_spin_params.cc.o.d"
  "ablation_spin_params"
  "ablation_spin_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_spin_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
