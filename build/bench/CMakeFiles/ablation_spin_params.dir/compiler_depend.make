# Empty compiler generated dependencies file for ablation_spin_params.
# This may be replaced when dependencies are built.
