# Empty dependencies file for table2_router_modules.
# This may be replaced when dependencies are built.
