file(REMOVE_RECURSE
  "CMakeFiles/table2_router_modules.dir/table2_router_modules.cc.o"
  "CMakeFiles/table2_router_modules.dir/table2_router_modules.cc.o.d"
  "table2_router_modules"
  "table2_router_modules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_router_modules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
