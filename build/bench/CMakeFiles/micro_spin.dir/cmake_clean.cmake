file(REMOVE_RECURSE
  "CMakeFiles/micro_spin.dir/micro_spin.cc.o"
  "CMakeFiles/micro_spin.dir/micro_spin.cc.o.d"
  "micro_spin"
  "micro_spin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_spin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
