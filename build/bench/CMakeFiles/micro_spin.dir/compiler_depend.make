# Empty compiler generated dependencies file for micro_spin.
# This may be replaced when dependencies are built.
