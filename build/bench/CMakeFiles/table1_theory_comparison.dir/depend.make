# Empty dependencies file for table1_theory_comparison.
# This may be replaced when dependencies are built.
