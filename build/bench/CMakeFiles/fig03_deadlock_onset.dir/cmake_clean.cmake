file(REMOVE_RECURSE
  "CMakeFiles/fig03_deadlock_onset.dir/fig03_deadlock_onset.cc.o"
  "CMakeFiles/fig03_deadlock_onset.dir/fig03_deadlock_onset.cc.o.d"
  "fig03_deadlock_onset"
  "fig03_deadlock_onset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_deadlock_onset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
