# Empty dependencies file for fig03_deadlock_onset.
# This may be replaced when dependencies are built.
