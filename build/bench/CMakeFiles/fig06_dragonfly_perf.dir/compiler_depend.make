# Empty compiler generated dependencies file for fig06_dragonfly_perf.
# This may be replaced when dependencies are built.
