file(REMOVE_RECURSE
  "CMakeFiles/fig06_dragonfly_perf.dir/fig06_dragonfly_perf.cc.o"
  "CMakeFiles/fig06_dragonfly_perf.dir/fig06_dragonfly_perf.cc.o.d"
  "fig06_dragonfly_perf"
  "fig06_dragonfly_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_dragonfly_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
