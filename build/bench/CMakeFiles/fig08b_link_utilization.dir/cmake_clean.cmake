file(REMOVE_RECURSE
  "CMakeFiles/fig08b_link_utilization.dir/fig08b_link_utilization.cc.o"
  "CMakeFiles/fig08b_link_utilization.dir/fig08b_link_utilization.cc.o.d"
  "fig08b_link_utilization"
  "fig08b_link_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08b_link_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
