# Empty compiler generated dependencies file for fig08b_link_utilization.
# This may be replaced when dependencies are built.
