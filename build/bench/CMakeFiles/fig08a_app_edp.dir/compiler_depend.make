# Empty compiler generated dependencies file for fig08a_app_edp.
# This may be replaced when dependencies are built.
