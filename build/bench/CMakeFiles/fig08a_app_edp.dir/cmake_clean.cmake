file(REMOVE_RECURSE
  "CMakeFiles/fig08a_app_edp.dir/fig08a_app_edp.cc.o"
  "CMakeFiles/fig08a_app_edp.dir/fig08a_app_edp.cc.o.d"
  "fig08a_app_edp"
  "fig08a_app_edp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08a_app_edp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
