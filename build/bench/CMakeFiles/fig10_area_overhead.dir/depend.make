# Empty dependencies file for fig10_area_overhead.
# This may be replaced when dependencies are built.
