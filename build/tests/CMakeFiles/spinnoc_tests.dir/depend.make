# Empty dependencies file for spinnoc_tests.
# This may be replaced when dependencies are built.
