
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_bubble.cc" "tests/CMakeFiles/spinnoc_tests.dir/test_bubble.cc.o" "gcc" "tests/CMakeFiles/spinnoc_tests.dir/test_bubble.cc.o.d"
  "/root/repo/tests/test_builder.cc" "tests/CMakeFiles/spinnoc_tests.dir/test_builder.cc.o" "gcc" "tests/CMakeFiles/spinnoc_tests.dir/test_builder.cc.o.d"
  "/root/repo/tests/test_common.cc" "tests/CMakeFiles/spinnoc_tests.dir/test_common.cc.o" "gcc" "tests/CMakeFiles/spinnoc_tests.dir/test_common.cc.o.d"
  "/root/repo/tests/test_deadlock.cc" "tests/CMakeFiles/spinnoc_tests.dir/test_deadlock.cc.o" "gcc" "tests/CMakeFiles/spinnoc_tests.dir/test_deadlock.cc.o.d"
  "/root/repo/tests/test_determinism.cc" "tests/CMakeFiles/spinnoc_tests.dir/test_determinism.cc.o" "gcc" "tests/CMakeFiles/spinnoc_tests.dir/test_determinism.cc.o.d"
  "/root/repo/tests/test_favors.cc" "tests/CMakeFiles/spinnoc_tests.dir/test_favors.cc.o" "gcc" "tests/CMakeFiles/spinnoc_tests.dir/test_favors.cc.o.d"
  "/root/repo/tests/test_heterogeneous.cc" "tests/CMakeFiles/spinnoc_tests.dir/test_heterogeneous.cc.o" "gcc" "tests/CMakeFiles/spinnoc_tests.dir/test_heterogeneous.cc.o.d"
  "/root/repo/tests/test_invariants.cc" "tests/CMakeFiles/spinnoc_tests.dir/test_invariants.cc.o" "gcc" "tests/CMakeFiles/spinnoc_tests.dir/test_invariants.cc.o.d"
  "/root/repo/tests/test_io.cc" "tests/CMakeFiles/spinnoc_tests.dir/test_io.cc.o" "gcc" "tests/CMakeFiles/spinnoc_tests.dir/test_io.cc.o.d"
  "/root/repo/tests/test_network.cc" "tests/CMakeFiles/spinnoc_tests.dir/test_network.cc.o" "gcc" "tests/CMakeFiles/spinnoc_tests.dir/test_network.cc.o.d"
  "/root/repo/tests/test_nic.cc" "tests/CMakeFiles/spinnoc_tests.dir/test_nic.cc.o" "gcc" "tests/CMakeFiles/spinnoc_tests.dir/test_nic.cc.o.d"
  "/root/repo/tests/test_power.cc" "tests/CMakeFiles/spinnoc_tests.dir/test_power.cc.o" "gcc" "tests/CMakeFiles/spinnoc_tests.dir/test_power.cc.o.d"
  "/root/repo/tests/test_router_units.cc" "tests/CMakeFiles/spinnoc_tests.dir/test_router_units.cc.o" "gcc" "tests/CMakeFiles/spinnoc_tests.dir/test_router_units.cc.o.d"
  "/root/repo/tests/test_routing.cc" "tests/CMakeFiles/spinnoc_tests.dir/test_routing.cc.o" "gcc" "tests/CMakeFiles/spinnoc_tests.dir/test_routing.cc.o.d"
  "/root/repo/tests/test_spin_corners.cc" "tests/CMakeFiles/spinnoc_tests.dir/test_spin_corners.cc.o" "gcc" "tests/CMakeFiles/spinnoc_tests.dir/test_spin_corners.cc.o.d"
  "/root/repo/tests/test_spin_recovery.cc" "tests/CMakeFiles/spinnoc_tests.dir/test_spin_recovery.cc.o" "gcc" "tests/CMakeFiles/spinnoc_tests.dir/test_spin_recovery.cc.o.d"
  "/root/repo/tests/test_spin_units.cc" "tests/CMakeFiles/spinnoc_tests.dir/test_spin_units.cc.o" "gcc" "tests/CMakeFiles/spinnoc_tests.dir/test_spin_units.cc.o.d"
  "/root/repo/tests/test_stress.cc" "tests/CMakeFiles/spinnoc_tests.dir/test_stress.cc.o" "gcc" "tests/CMakeFiles/spinnoc_tests.dir/test_stress.cc.o.d"
  "/root/repo/tests/test_theorem.cc" "tests/CMakeFiles/spinnoc_tests.dir/test_theorem.cc.o" "gcc" "tests/CMakeFiles/spinnoc_tests.dir/test_theorem.cc.o.d"
  "/root/repo/tests/test_topology.cc" "tests/CMakeFiles/spinnoc_tests.dir/test_topology.cc.o" "gcc" "tests/CMakeFiles/spinnoc_tests.dir/test_topology.cc.o.d"
  "/root/repo/tests/test_traffic.cc" "tests/CMakeFiles/spinnoc_tests.dir/test_traffic.cc.o" "gcc" "tests/CMakeFiles/spinnoc_tests.dir/test_traffic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/spinnoc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
