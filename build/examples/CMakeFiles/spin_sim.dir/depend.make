# Empty dependencies file for spin_sim.
# This may be replaced when dependencies are built.
