file(REMOVE_RECURSE
  "CMakeFiles/spin_sim.dir/spin_sim.cpp.o"
  "CMakeFiles/spin_sim.dir/spin_sim.cpp.o.d"
  "spin_sim"
  "spin_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spin_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
