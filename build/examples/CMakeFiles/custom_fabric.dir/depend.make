# Empty dependencies file for custom_fabric.
# This may be replaced when dependencies are built.
