file(REMOVE_RECURSE
  "CMakeFiles/custom_fabric.dir/custom_fabric.cpp.o"
  "CMakeFiles/custom_fabric.dir/custom_fabric.cpp.o.d"
  "custom_fabric"
  "custom_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
