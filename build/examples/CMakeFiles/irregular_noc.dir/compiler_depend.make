# Empty compiler generated dependencies file for irregular_noc.
# This may be replaced when dependencies are built.
