file(REMOVE_RECURSE
  "CMakeFiles/irregular_noc.dir/irregular_noc.cpp.o"
  "CMakeFiles/irregular_noc.dir/irregular_noc.cpp.o.d"
  "irregular_noc"
  "irregular_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irregular_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
