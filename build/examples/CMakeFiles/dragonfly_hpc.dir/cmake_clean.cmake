file(REMOVE_RECURSE
  "CMakeFiles/dragonfly_hpc.dir/dragonfly_hpc.cpp.o"
  "CMakeFiles/dragonfly_hpc.dir/dragonfly_hpc.cpp.o.d"
  "dragonfly_hpc"
  "dragonfly_hpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dragonfly_hpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
