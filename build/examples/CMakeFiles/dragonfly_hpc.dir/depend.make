# Empty dependencies file for dragonfly_hpc.
# This may be replaced when dependencies are built.
