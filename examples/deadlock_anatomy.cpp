/**
 * @file
 * Anatomy of a SPIN recovery: the paper's Fig. 2 / Fig. 4 walkthrough
 * as a runnable program. Constructs a guaranteed deadlock on a ring
 * (every node sends one packet two hops clockwise through a single VC),
 * then narrates each phase as it happens: detection (t_DD expiry),
 * probe traversal, loop latch, move, the synchronized spin, the
 * probe_move re-check and the kill_move epilogue.
 *
 * Telemetry flags:
 *   --trace PATH   Chrome trace (chrome://tracing / ui.perfetto.dev)
 *   --jsonl PATH   same events as newline-delimited JSON
 *   --dot PATH     Graphviz DOT of the captured wait-for loop
 *   --json PATH    full telemetry dump (config, stats, forensics)
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "core/SpinManager.hh"
#include "core/SpinUnit.hh"
#include "deadlock/OracleDetector.hh"
#include "network/NetworkBuilder.hh"
#include "obs/Forensics.hh"
#include "obs/Tracer.hh"
#include "topology/Ring.hh"

using namespace spin;

namespace
{

/** Clockwise-only ring routing (also used by the test suite). */
class Clockwise : public RoutingAlgorithm
{
  public:
    std::string name() const override { return "cw-ring"; }
    void
    candidates(const Packet &, const Router &, RouterId,
               std::vector<PortId> &out) const override
    {
        out.assign(1, RingInfo::kCw);
    }
};

std::string
stateLine(SpinManager &mgr, int n)
{
    std::string s;
    for (RouterId r = 0; r < n; ++r) {
        const SpinState st = mgr.unit(r).paperState();
        const char *tag = "?";
        switch (st) {
          case SpinState::Off:             tag = "--"; break;
          case SpinState::DetectDeadlock:  tag = "DD"; break;
          case SpinState::Move:            tag = "MV"; break;
          case SpinState::Frozen:          tag = "FZ"; break;
          case SpinState::ForwardProgress: tag = "FP"; break;
          case SpinState::ProbeMove:       tag = "PM"; break;
          case SpinState::KillMove:        tag = "KM"; break;
        }
        s += "R" + std::to_string(r) + ":" + tag + " ";
    }
    return s;
}

} // namespace

int
main(int argc, char **argv)
{
    constexpr int kN = 6;

    std::string trace_path, jsonl_path, dot_path, json_path;
    for (int i = 1; i < argc; ++i) {
        const auto arg = [&](std::string &dst) {
            if (i + 1 < argc) {
                dst = argv[++i];
                return true;
            }
            std::fprintf(stderr, "missing value for %s\n", argv[i]);
            return false;
        };
        bool ok = true;
        if (!std::strcmp(argv[i], "--trace"))
            ok = arg(trace_path);
        else if (!std::strcmp(argv[i], "--jsonl"))
            ok = arg(jsonl_path);
        else if (!std::strcmp(argv[i], "--dot"))
            ok = arg(dot_path);
        else if (!std::strcmp(argv[i], "--json"))
            ok = arg(json_path);
        else {
            std::fprintf(stderr,
                         "usage: %s [--trace P] [--jsonl P] [--dot P] "
                         "[--json P]\n", argv[0]);
            return 2;
        }
        if (!ok)
            return 2;
    }

    auto topo = std::make_shared<Topology>(makeRing(kN));
    NetworkConfig cfg;
    cfg.vnets = 1;
    cfg.vcsPerVnet = 1; // one VC: the deadlock is unavoidable
    cfg.vcDepth = 5;
    cfg.maxPacketSize = 5;
    cfg.scheme = DeadlockScheme::Spin;
    cfg.tDd = 32;
    Network net(topo, cfg, std::make_unique<Clockwise>());
    SpinManager &mgr = *net.spinManager();
    OracleDetector oracle(net);

    net.enableForensics();
    net.enableSampling(obs::SamplerConfig{16, 4096});
    if (!trace_path.empty()) {
        if (auto sink = obs::ChromeTraceSink::open(trace_path))
            net.setTracer(std::make_unique<obs::Tracer>(std::move(sink)));
        else
            std::fprintf(stderr, "cannot open %s\n", trace_path.c_str());
    } else if (!jsonl_path.empty()) {
        if (auto sink = obs::JsonlSink::open(jsonl_path))
            net.setTracer(std::make_unique<obs::Tracer>(std::move(sink)));
        else
            std::fprintf(stderr, "cannot open %s\n", jsonl_path.c_str());
    }

    std::printf("=== Deadlock anatomy on a %d-router ring ===\n\n", kN);
    std::printf("Every node sends one 5-flit packet two hops clockwise "
                "through one VC;\nonce every clockwise buffer holds a "
                "packet wanting the next one, nothing\ncan move -- the "
                "textbook cyclic buffer dependency (paper Fig. 2).\n\n");

    for (NodeId i = 0; i < kN; ++i)
        net.offerPacket(net.makePacket(i, (i + 2) % kN, 0, 5));

    Stats last;
    bool reported_deadlock = false;
    while (net.packetsInFlight() > 0 && net.now() < 2000) {
        net.step();
        const Stats &st = net.stats();
        const Cycle t = net.now();

        if (!reported_deadlock && oracle.detect().deadlocked) {
            std::printf("[%4llu] oracle: cyclic dependency in place "
                        "(%zu blocked buffers) -- the network is "
                        "deadlocked\n",
                        static_cast<unsigned long long>(t),
                        oracle.detect().members.size());
            reported_deadlock = true;
        }
        if (st.probesSent != last.probesSent)
            std::printf("[%4llu] PHASE I   probe sent (t_DD=%llu "
                        "expired on a blocked VC)      %s\n",
                        static_cast<unsigned long long>(t),
                        static_cast<unsigned long long>(cfg.tDd),
                        stateLine(mgr, kN).c_str());
        if (st.probesReturned != last.probesReturned) {
            for (RouterId r = 0; r < kN; ++r) {
                const LoopBuffer &lb = mgr.unit(r).loopBuffer();
                if (lb.valid()) {
                    std::printf("[%4llu] PHASE I   probe returned to R%d:"
                                " loop latched, %d hops, %llu cycles\n",
                                static_cast<unsigned long long>(t), r,
                                lb.loopHops(),
                                static_cast<unsigned long long>(
                                    lb.loopLatency()));
                }
            }
        }
        if (st.movesSent != last.movesSent)
            std::printf("[%4llu] PHASE II  move sent: spin committed "
                        "for cycle now + 2*loop\n",
                        static_cast<unsigned long long>(t));
        if (st.movesReturned != last.movesReturned)
            std::printf("[%4llu] PHASE II  move returned: every router "
                        "frozen                %s\n",
                        static_cast<unsigned long long>(t),
                        stateLine(mgr, kN).c_str());
        if (st.spins != last.spins)
            std::printf("[%4llu] PHASE III SPIN! all %llu packets move "
                        "one hop simultaneously\n",
                        static_cast<unsigned long long>(t),
                        static_cast<unsigned long long>(
                            st.packetsRotated - last.packetsRotated));
        if (st.probeMovesSent != last.probeMovesSent)
            std::printf("[%4llu] re-check  probe_move launched along "
                        "the latched loop\n",
                        static_cast<unsigned long long>(t));
        if (st.killMovesSent != last.killMovesSent)
            std::printf("[%4llu] epilogue  kill_move: dependency gone, "
                        "loop released\n",
                        static_cast<unsigned long long>(t));
        if (st.packetsEjected != last.packetsEjected)
            std::printf("[%4llu] delivery  %llu/%d packets ejected\n",
                        static_cast<unsigned long long>(t),
                        static_cast<unsigned long long>(
                            st.packetsEjected),
                        kN);
        last = st;
    }

    std::printf("\nDone at cycle %llu: %llu spins, %llu probes (%llu "
                "returned), all %d packets delivered.\n",
                static_cast<unsigned long long>(net.now()),
                static_cast<unsigned long long>(net.stats().spins),
                static_cast<unsigned long long>(net.stats().probesSent),
                static_cast<unsigned long long>(
                    net.stats().probesReturned),
                kN);

    const obs::Forensics &forensics = *net.forensics();
    if (!forensics.records().empty()) {
        const obs::LoopSnapshot &snap = forensics.records().front();
        std::printf("\nForensic snapshot (cycle %llu, via %s): loop of "
                    "%zu routers:",
                    static_cast<unsigned long long>(snap.cycle),
                    snap.origin.c_str(), snap.routers.size());
        for (const RouterId r : snap.routers)
            std::printf(" R%d", r);
        std::printf("\n");
        if (!dot_path.empty()) {
            if (forensics.writeDot(dot_path, 0))
                std::printf("wrote %s (render: dot -Tsvg %s)\n",
                            dot_path.c_str(), dot_path.c_str());
            else
                std::fprintf(stderr, "cannot write %s\n",
                             dot_path.c_str());
        }
    }
    if (!json_path.empty()) {
        if (net.dumpTelemetry(json_path))
            std::printf("wrote %s\n", json_path.c_str());
        else
            std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    }
    if (obs::Tracer *t = net.trace()) {
        t->flush();
        std::printf("trace: %llu events recorded\n",
                    static_cast<unsigned long long>(t->recorded()));
    }
    return net.packetsInFlight() == 0 ? 0 : 1;
}
