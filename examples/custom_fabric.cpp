/**
 * @file
 * End-to-end "bring your own fabric" flow: define an irregular
 * topology in the text format (as a NoC generator or datacenter
 * planner would emit), load it, attach SPIN-protected adaptive
 * routing, and replay a hand-written packet trace cycle-exactly.
 *
 *   $ ./custom_fabric [topology_file [trace_file]]
 *
 * Without arguments it builds the paper's Fig. 2-style ring inline.
 */

#include <cstdio>
#include <sstream>

#include "network/NetworkBuilder.hh"
#include "topology/TopologyIo.hh"
#include "traffic/TraceTraffic.hh"

using namespace spin;

namespace
{

/** A 6-router irregular fabric: a ring with one chord. */
const char *kDefaultTopology = R"(
# 6 routers, 4 ports each (up to 3 network links + 1 NIC)
routers 6 4
bilink 0 0 1 0 1
bilink 1 1 2 0 1
bilink 2 1 3 0 1
bilink 3 1 4 0 1
bilink 4 1 5 0 1
bilink 5 1 0 1 1
bilink 0 2 3 2 2   # the chord, a slower long-range link
nic 0 0 3
nic 1 1 3
nic 2 2 3
nic 3 3 3
nic 4 4 3
nic 5 5 3
)";

const char *kDefaultTrace = R"(
# cycle src dst vnet size
0    0 3 0 5
0    1 4 0 5
0    2 5 0 5
0    3 0 0 5
0    4 1 0 5
0    5 2 0 5
40   0 5 0 1
41   5 0 0 1
100  2 0 0 5
)";

} // namespace

int
main(int argc, char **argv)
{
    Topology parsed = [&] {
        if (argc > 1)
            return readTopologyFile(argv[1]);
        std::istringstream ss(kDefaultTopology);
        return readTopology(ss);
    }();
    auto topo = std::make_shared<Topology>(std::move(parsed));

    std::printf("fabric: %d routers, %zu directed links, %d nodes\n",
                topo->numRouters(), topo->links().size(),
                topo->numNodes());

    NetworkConfig cfg;
    cfg.vnets = 1;
    cfg.vcsPerVnet = 1;
    cfg.vcDepth = 5;
    cfg.maxPacketSize = 5;
    cfg.scheme = DeadlockScheme::Spin; // works on ANY loaded graph
    cfg.tDd = 64;
    auto net = buildNetwork(topo, cfg, RoutingKind::MinimalAdaptive);

    const std::vector<TraceRecord> trace = [&] {
        if (argc > 2)
            return readTraceFile(argv[2]);
        std::istringstream ss(kDefaultTrace);
        return readTrace(ss);
    }();
    TraceTraffic replay(*net, trace);
    std::printf("trace: %zu packets\n\n", trace.size());

    while ((!replay.done() || net->packetsInFlight() > 0) &&
           net->now() < 100000) {
        replay.tick();
        net->step();
    }

    const Stats &st = net->stats();
    std::printf("done at cycle %llu\n",
                static_cast<unsigned long long>(net->now()));
    std::printf("  delivered  : %llu/%llu packets\n",
                static_cast<unsigned long long>(st.packetsEjected),
                static_cast<unsigned long long>(st.packetsCreated));
    std::printf("  avg latency: %.1f cycles (p50 %.0f, p99 %.0f)\n",
                st.avgLatency(), st.latencyPercentile(0.5),
                st.latencyPercentile(0.99));
    std::printf("  spins      : %llu\n",
                static_cast<unsigned long long>(st.spins));
    return net->packetsInFlight() == 0 ? 0 : 1;
}
