/**
 * @file
 * Off-chip HPC scenario: the paper's 1024-node dragonfly. Compares the
 * commercial-style baseline (UGAL with Dally VC-ordering, 3 VCs) with
 * what SPIN enables -- the same UGAL with free VC use, and FAvORS-NMin
 * with a single VC -- under an adversarial tornado workload.
 *
 *   $ ./dragonfly_hpc [rate] [cycles]
 */

#include <cstdio>
#include <cstdlib>

#include "network/NetworkBuilder.hh"
#include "power/AreaPowerModel.hh"
#include "topology/Dragonfly.hh"
#include "traffic/SyntheticInjector.hh"

using namespace spin;

namespace
{

void
run(const ConfigPreset &preset,
    const std::shared_ptr<const Topology> &topo, double rate,
    Cycle cycles)
{
    auto net = preset.build(topo);
    InjectorConfig icfg;
    icfg.injectionRate = rate;
    SyntheticInjector inj(*net, Pattern::Tornado, icfg);
    for (Cycle i = 0; i < cycles / 3; ++i) {
        inj.tick();
        net->step();
    }
    net->beginMeasurement();
    for (Cycle i = 0; i < cycles; ++i) {
        inj.tick();
        net->step();
    }
    const Stats &st = net->stats();

    RouterDesign d;
    d.radix = 15;
    d.vnets = preset.cfg.vnets;
    d.vcsPerVnet = preset.cfg.vcsPerVnet;
    d.numRouters = topo->numRouters();
    d.extras = preset.cfg.scheme == DeadlockScheme::Spin
        ? SchemeExtras::Spin : SchemeExtras::None;
    const AreaPower ap = AreaPowerModel::evaluate(d);

    std::printf("%-24s lat %8.1f cy | thru %6.3f f/n/c | spins %5llu | "
                "router %7.0f um^2 %6.1f mW\n",
                preset.name.c_str(), st.avgLatency(),
                st.throughput(net->numNodes(), net->now()),
                static_cast<unsigned long long>(st.spins), ap.areaUm2,
                ap.powerMw);
}

} // namespace

int
main(int argc, char **argv)
{
    const double rate = argc > 1 ? std::atof(argv[1]) : 0.10;
    const Cycle cycles = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                  : 3000;

    std::printf("=== 1024-node dragonfly (p=4 a=8 h=4 g=32), tornado, "
                "rate %.2f ===\n\n", rate);
    auto topo = std::make_shared<Topology>(makePaperDragonfly());

    for (const ConfigPreset &p : dragonflyPresets3Vc())
        run(p, topo, rate, cycles);
    for (const ConfigPreset &p : dragonflyPresets1Vc())
        run(p, topo, rate, cycles);

    std::printf("\nThe 1-VC SPIN routers deliver comparable latency at "
                "roughly half the\nrouter area and power of the 3-VC "
                "baseline (see bench/fig10_area_overhead).\n");
    return 0;
}
