/**
 * @file
 * General-purpose simulation driver (in the spirit of BookSim's CLI):
 * pick a topology, routing algorithm, deadlock scheme, traffic pattern
 * and load on the command line, get the standard metrics back.
 *
 *   $ ./spin_sim --topology mesh8x8 --routing favors-min --vcs 1 \
 *                --scheme spin --pattern transpose --rate 0.3 \
 *                --warmup 2000 --measure 10000
 *
 * Topologies: mesh<X>x<Y>, torus<X>x<Y>, ring<N>, dragonfly (paper's
 * 1024-node instance), or file:<path> (TopologyIo format).
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "network/NetworkBuilder.hh"
#include "topology/Dragonfly.hh"
#include "topology/Mesh.hh"
#include "topology/Ring.hh"
#include "topology/TopologyIo.hh"
#include "topology/Torus.hh"
#include "traffic/SyntheticInjector.hh"

using namespace spin;

namespace
{

Topology
parseTopology(const std::string &s)
{
    int a = 0, b = 0;
    if (std::sscanf(s.c_str(), "mesh%dx%d", &a, &b) == 2)
        return makeMesh(a, b);
    if (std::sscanf(s.c_str(), "torus%dx%d", &a, &b) == 2)
        return makeTorus(a, b);
    if (std::sscanf(s.c_str(), "ring%d", &a) == 1)
        return makeRing(a);
    if (s == "dragonfly")
        return makePaperDragonfly();
    if (s.rfind("file:", 0) == 0)
        return readTopologyFile(s.substr(5));
    SPIN_FATAL("unknown topology '", s, "'");
}

RoutingKind
parseRouting(const std::string &s)
{
    for (const RoutingKind k :
         {RoutingKind::XyDor, RoutingKind::WestFirst,
          RoutingKind::MinimalAdaptive, RoutingKind::EscapeVc,
          RoutingKind::TorusBubble, RoutingKind::UgalDally,
          RoutingKind::UgalSpin, RoutingKind::FavorsMin,
          RoutingKind::FavorsNMin}) {
        if (toString(k) == s)
            return k;
    }
    SPIN_FATAL("unknown routing '", s, "' (try favors-min, west-first, "
               "escape-vc, ugal-dally, ...)");
}

Pattern
parsePattern(const std::string &s)
{
    for (const Pattern p :
         {Pattern::UniformRandom, Pattern::BitComplement,
          Pattern::Transpose, Pattern::Tornado, Pattern::BitReverse,
          Pattern::BitRotation, Pattern::Shuffle, Pattern::Neighbor}) {
        if (toString(p) == s)
            return p;
    }
    SPIN_FATAL("unknown pattern '", s, "'");
}

DeadlockScheme
parseScheme(const std::string &s)
{
    if (s == "spin")
        return DeadlockScheme::Spin;
    if (s == "static-bubble")
        return DeadlockScheme::StaticBubble;
    if (s == "none")
        return DeadlockScheme::None;
    SPIN_FATAL("unknown scheme '", s, "' (spin|static-bubble|none)");
}

} // namespace

int
main(int argc, char **argv)
{
    std::string topo_s = "mesh8x8", routing_s = "favors-min";
    std::string pattern_s = "uniform-random", scheme_s = "spin";
    NetworkConfig cfg;
    cfg.vnets = 1;
    cfg.vcsPerVnet = 1;
    double rate = 0.1;
    Cycle warmup = 2000, measure = 10000;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                SPIN_FATAL(a, " needs a value");
            return argv[++i];
        };
        if (a == "--topology") topo_s = next();
        else if (a == "--routing") routing_s = next();
        else if (a == "--pattern") pattern_s = next();
        else if (a == "--scheme") scheme_s = next();
        else if (a == "--vcs") cfg.vcsPerVnet = std::stoi(next());
        else if (a == "--vnets") cfg.vnets = std::stoi(next());
        else if (a == "--rate") rate = std::stod(next());
        else if (a == "--warmup") warmup = std::stoull(next());
        else if (a == "--measure") measure = std::stoull(next());
        else if (a == "--tdd") cfg.tDd = std::stoull(next());
        else if (a == "--seed") cfg.seed = std::stoull(next());
        else {
            std::fprintf(stderr, "unknown flag %s (see file header)\n",
                         a.c_str());
            return 2;
        }
    }
    cfg.scheme = parseScheme(scheme_s);
    cfg.name = topo_s + "/" + routing_s;

    auto topo = std::make_shared<Topology>(parseTopology(topo_s));
    auto net = buildNetwork(topo, cfg, parseRouting(routing_s));
    InjectorConfig icfg;
    icfg.injectionRate = rate;
    icfg.seed = cfg.seed + 1;
    SyntheticInjector inj(*net, parsePattern(pattern_s), icfg);

    for (Cycle i = 0; i < warmup; ++i) {
        inj.tick();
        net->step();
    }
    net->beginMeasurement();
    for (Cycle i = 0; i < measure; ++i) {
        inj.tick();
        net->step();
    }

    const Stats &st = net->stats();
    const LinkUsage u = net->linkUsage();
    std::printf("%s | %s | %d vnets x %d VCs | %s | %s @ %.3f "
                "flits/node/cycle\n", topo_s.c_str(), routing_s.c_str(),
                cfg.vnets, cfg.vcsPerVnet, scheme_s.c_str(),
                pattern_s.c_str(), rate);
    std::printf("  latency    : avg %.2f  p50 %.0f  p99 %.0f  max %llu "
                "cycles\n", st.avgLatency(), st.latencyPercentile(0.5),
                st.latencyPercentile(0.99),
                static_cast<unsigned long long>(st.maxLatency));
    std::printf("  throughput : %.4f flits/node/cycle (offered %.4f)\n",
                st.throughput(net->numNodes(), net->now()), rate);
    std::printf("  hops       : %.2f avg\n", st.avgHops());
    std::printf("  links      : %.1f%% flits, %.1f%% SMs, %.1f%% idle\n",
                100 * u.frac(u.flitCycles),
                100 * (u.frac(u.probeCycles) + u.frac(u.moveCycles)),
                100 * u.frac(u.idleCycles));
    std::printf("  spin       : %llu spins (%llu false+), %llu probes "
                "(%llu returned)\n",
                static_cast<unsigned long long>(st.spins),
                static_cast<unsigned long long>(st.falsePositiveSpins),
                static_cast<unsigned long long>(st.probesSent),
                static_cast<unsigned long long>(st.probesReturned));
    return 0;
}
