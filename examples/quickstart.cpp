/**
 * @file
 * Quickstart: build an 8x8 mesh running the paper's headline
 * configuration -- FAvORS fully adaptive routing with a single VC per
 * message class, deadlock freedom supplied by SPIN -- drive it with
 * uniform random traffic, and print the numbers that matter.
 *
 *   $ ./quickstart [injection_rate]
 */

#include <cstdio>
#include <cstdlib>

#include "network/NetworkBuilder.hh"
#include "topology/Mesh.hh"
#include "traffic/SyntheticInjector.hh"

using namespace spin;

int
main(int argc, char **argv)
{
    const double rate = argc > 1 ? std::atof(argv[1]) : 0.20;

    // 1. A topology. Any strongly connected graph works; SPIN needs no
    //    knowledge of it.
    auto topo = std::make_shared<Topology>(makeMesh(8, 8));

    // 2. A configuration: 3 message classes (as under a directory
    //    protocol), ONE virtual channel each, SPIN recovery.
    NetworkConfig cfg;
    cfg.name = "quickstart";
    cfg.vnets = 3;
    cfg.vcsPerVnet = 1;
    cfg.vcDepth = 5;        // virtual cut-through: >= max packet size
    cfg.maxPacketSize = 5;
    cfg.scheme = DeadlockScheme::Spin;
    cfg.tDd = 128;          // deadlock-detection timeout (paper default)

    // 3. The network: fully adaptive minimal routing (FAvORS-Min). No
    //    turn restrictions, no escape buffers, no VC ordering.
    auto net = buildNetwork(topo, cfg, RoutingKind::FavorsMin);

    // 4. Traffic: uniform random, mixed 1-flit control / 5-flit data.
    InjectorConfig icfg;
    icfg.injectionRate = rate;
    SyntheticInjector inj(*net, Pattern::UniformRandom, icfg);

    // 5. Warm up, measure, report.
    for (int i = 0; i < 2000; ++i) {
        inj.tick();
        net->step();
    }
    net->beginMeasurement();
    for (int i = 0; i < 10000; ++i) {
        inj.tick();
        net->step();
    }

    const Stats &st = net->stats();
    std::printf("8x8 mesh | favors-min | 1 VC/vnet | SPIN | rate %.2f "
                "flits/node/cycle\n", rate);
    std::printf("  packets delivered   : %llu\n",
                static_cast<unsigned long long>(st.packetsEjected));
    std::printf("  avg packet latency  : %.2f cycles\n", st.avgLatency());
    std::printf("  avg hops            : %.2f\n", st.avgHops());
    std::printf("  throughput          : %.3f flits/node/cycle\n",
                st.throughput(net->numNodes(), net->now()));
    std::printf("  deadlocks resolved  : %llu spins (%llu probes sent, "
                "%llu returned)\n",
                static_cast<unsigned long long>(st.spins),
                static_cast<unsigned long long>(st.probesSent),
                static_cast<unsigned long long>(st.probesReturned));
    std::printf("\nTry a higher rate (e.g. 0.30) to watch SPIN resolve "
                "real deadlocks.\n");
    return 0;
}
