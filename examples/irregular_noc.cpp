/**
 * @file
 * The paper's motivating use case: irregular topologies where no turn
 * model or escape network can be designed ahead of time. Power-gates a
 * random set of mesh links (as an on-chip resiliency manager would),
 * then runs fully adaptive table-driven routing with one VC -- SPIN
 * supplies deadlock freedom on whatever graph remains. Also runs a
 * Jellyfish-style random regular graph for the datacenter flavor.
 *
 *   $ ./irregular_noc [seed] [faults]
 */

#include <cstdio>
#include <cstdlib>

#include "deadlock/OracleDetector.hh"
#include "network/NetworkBuilder.hh"
#include "topology/Irregular.hh"
#include "traffic/SyntheticInjector.hh"

using namespace spin;

namespace
{

void
drive(const char *label, std::shared_ptr<const Topology> topo,
      std::uint64_t seed)
{
    NetworkConfig cfg;
    cfg.vnets = 1;
    cfg.vcsPerVnet = 1;
    cfg.vcDepth = 5;
    cfg.maxPacketSize = 5;
    cfg.scheme = DeadlockScheme::Spin;
    cfg.tDd = 64;
    cfg.seed = seed;
    auto net = buildNetwork(topo, cfg, RoutingKind::MinimalAdaptive);

    InjectorConfig icfg;
    icfg.injectionRate = 0.08;
    icfg.seed = seed;
    SyntheticInjector inj(*net, Pattern::UniformRandom, icfg);

    for (int i = 0; i < 6000; ++i) {
        inj.tick();
        net->step();
    }
    // Stop injecting; every packet must still get out.
    Cycle drained = net->now();
    while (net->packetsInFlight() > 0 && net->now() - drained < 60000)
        net->step();

    const Stats &st = net->stats();
    OracleDetector oracle(*net);
    std::printf("%-28s %4d routers | delivered %llu/%llu | avg lat "
                "%6.1f | spins %4llu | %s\n",
                label, topo->numRouters(),
                static_cast<unsigned long long>(st.packetsEjected),
                static_cast<unsigned long long>(st.packetsCreated),
                st.avgLatency(),
                static_cast<unsigned long long>(st.spins),
                net->packetsInFlight() == 0 &&
                        !oracle.detect().deadlocked
                    ? "deadlock-free"
                    : "STUCK (bug!)");
}

} // namespace

int
main(int argc, char **argv)
{
    const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1],
                                                        nullptr, 10)
                                        : 2026;
    const int faults = argc > 2 ? std::atoi(argv[2]) : 10;

    std::printf("=== SPIN on irregular topologies (seed %llu) ===\n\n",
                static_cast<unsigned long long>(seed));

    Random rng(seed);
    auto faulty = std::make_shared<Topology>(
        makeRandomFaultyMesh(6, 6, faults, rng));
    std::printf("power-gated mesh: 6x6 with %d random links removed "
                "(still connected)\n", faults);
    drive("faulty-mesh + favors + SPIN", faulty, seed);

    auto rrg = std::make_shared<Topology>(makeRandomRegular(24, 4, rng));
    std::printf("\njellyfish-style random 4-regular graph, 24 "
                "routers\n");
    drive("random-graph + SPIN", rrg, seed + 1);

    std::printf("\nNo turn model, no escape CDG, no VC ordering was "
                "derived for either graph:\nthe same adaptive routing "
                "and recovery machinery ran unmodified on both.\n");
    return 0;
}
